#ifndef DATACELL_NET_HTTP_SERVER_H_
#define DATACELL_NET_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/result.h"

namespace datacell {

/// One parsed request. Only the request line is interpreted; headers are
/// skipped (the observability endpoints need no content negotiation).
struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/metrics"
  std::string query;   // "prefix=datacell_basket" (raw, no decoding)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal epoll-based HTTP/1.0-style server for the observability
/// endpoints: GET-only, loopback-bound, Connection: close, one epoll loop on
/// one background thread. This is deliberately not a general web server —
/// no TLS, no keep-alive, no chunking, request lines capped at 8 KB — just
/// enough for `curl`/Prometheus to scrape a running engine.
///
/// Handlers run on the server thread and must be thread-safe against the
/// engine (the observability handlers only call snapshot-style accessors,
/// which are).
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer() { Stop(); }

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers an exact-path handler ("/metrics"). Call before Start.
  void Handle(const std::string& path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and starts the
  /// serving thread.
  Status Start(uint16_t port);
  /// Stops the serving thread and closes the listener. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The bound port (resolved after Start with port 0).
  uint16_t port() const { return port_; }
  /// Requests served since Start (any status).
  int64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void ServeConnection(int fd);

  std::map<std::string, Handler> handlers_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<int64_t> requests_{0};
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() wakes the epoll wait
  uint16_t port_ = 0;
};

}  // namespace datacell

#endif  // DATACELL_NET_HTTP_SERVER_H_
