#ifndef DATACELL_NET_OBSERVABILITY_H_
#define DATACELL_NET_OBSERVABILITY_H_

#include <string>

#include "core/engine.h"
#include "net/http_server.h"

namespace datacell {

/// The engine's HTTP observability endpoint: wires an HttpServer to a live
/// Engine. Routes:
///
///   /healthz          liveness probe ("ok")
///   /metrics          Prometheus exposition, byte-identical to
///                     Engine::MetricsText(); optional ?prefix=<name-prefix>
///                     filter (the \metrics prefix view over HTTP)
///   /trace            Chrome trace_event JSON of the trace ring (empty
///                     object when tracing is off)
///   /queries          JSON array: per-query name/sql/pipeline state plus
///                     the per-step profiler snapshot
///
/// All handlers call snapshot-style engine accessors that are safe while
/// the scheduler runs; scraping a live engine is the point.
class ObservabilityServer {
 public:
  /// `engine` must outlive this server.
  explicit ObservabilityServer(Engine* engine);
  ~ObservabilityServer() { Stop(); }

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and serves until Stop.
  Status Start(uint16_t port);
  void Stop() { server_.Stop(); }

  bool running() const { return server_.running(); }
  uint16_t port() const { return server_.port(); }
  int64_t requests() const { return server_.requests(); }

  /// The /queries JSON document (exposed for tests and the shell).
  std::string QueriesJson() const;

 private:
  Engine* engine_;
  HttpServer server_;
};

/// Appends `s` JSON-escaped (quotes, backslashes, control characters).
void AppendJsonString(std::string& out, const std::string& s);

}  // namespace datacell

#endif  // DATACELL_NET_OBSERVABILITY_H_
