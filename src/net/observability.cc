#include "net/observability.h"

#include <cstdio>
#include <cstring>

namespace datacell {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

ObservabilityServer::ObservabilityServer(Engine* engine) : engine_(engine) {
  server_.Handle("/healthz", [](const HttpRequest&) {
    HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  server_.Handle("/metrics", [this](const HttpRequest& req) {
    HttpResponse r;
    // The format version Prometheus' text parser expects.
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    constexpr const char* kPrefixKey = "prefix=";
    if (req.query.rfind(kPrefixKey, 0) == 0) {
      r.body = engine_->MetricsText(req.query.substr(strlen(kPrefixKey)));
    } else {
      // No filter: byte-identical to Engine::MetricsText(), so a scrape and
      // an in-process dump diff clean (the CI curl smoke checks exactly
      // this).
      r.body = engine_->MetricsText();
    }
    return r;
  });
  server_.Handle("/trace", [this](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "application/json";
    std::string json = engine_->TraceJson();
    r.body = json.empty() ? "{\"traceEvents\":[]}" : std::move(json);
    return r;
  });
  server_.Handle("/queries", [this](const HttpRequest&) {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = QueriesJson();
    return r;
  });
}

Status ObservabilityServer::Start(uint16_t port) {
  return server_.Start(port);
}

std::string ObservabilityServer::QueriesJson() const {
  std::string out = "[";
  for (size_t id = 0; id < engine_->num_queries(); ++id) {
    Result<const Engine::QueryInfo*> q = engine_->GetQuery(id);
    if (!q.ok()) continue;
    const Engine::QueryInfo& info = **q;
    if (out.size() > 1) out += ",";
    out += "{\"id\":" + std::to_string(id) + ",\"name\":";
    AppendJsonString(out, info.name);
    out += ",\"sql\":";
    AppendJsonString(out, info.sql);
    out += ",\"removed\":";
    out += info.removed ? "true" : "false";
    out += ",\"shard\":" + std::to_string(engine_->shard_index());
    if (!info.placement.empty()) {
      out += ",\"placement\":";
      AppendJsonString(out, info.placement);
    }
    const FactoryPtr& f = info.factory;
    if (f != nullptr) {
      out += ",\"specialized\":";
      out += f->is_specialized() ? "true" : "false";
      if (!f->is_specialized()) {
        out += ",\"fallback_reason\":";
        AppendJsonString(out, f->specialize_fallback());
      }
      out += ",\"window_mode\":";
      AppendJsonString(out, f->window_mode_name());
      out += ",\"results_emitted\":" + std::to_string(f->results_emitted());
      out += ",\"plan_errors\":" + std::to_string(f->plan_errors());
      out += ",\"profiling\":";
      out += f->profiling() ? "true" : "false";
      PipelineProfile::Snapshot prof = f->profile().Snap();
      out += ",\"fires\":" + std::to_string(prof.fires);
      out += ",\"fire_time_ns\":" + std::to_string(prof.fire_time_ns);
      out += ",\"steps\":[";
      for (size_t i = 0; i < prof.steps.size(); ++i) {
        const PipelineProfile::StepSnapshot& s = prof.steps[i];
        if (i > 0) out += ",";
        out += "{\"step\":";
        AppendJsonString(out, s.label);
        out += ",\"depth\":" + std::to_string(s.depth);
        out += ",\"calls\":" + std::to_string(s.calls);
        out += ",\"rows_in\":" + std::to_string(s.rows_in);
        out += ",\"rows_out\":" + std::to_string(s.rows_out);
        out += ",\"time_ns\":" + std::to_string(s.time_ns) + "}";
      }
      out += "]";
    }
    if (info.partition != nullptr) {
      // The shard plan: the report's own JSON object, with the engine-level
      // effective verdict (live N004 / chained overrides) alongside it.
      std::string reason;
      analysis::PartitionVerdict effective =
          engine_->EffectivePartitionVerdict(info, &reason);
      out += ",\"partition\":" + info.partition->ToJson();
      out += ",\"effective_verdict\":";
      AppendJsonString(out, analysis::PartitionVerdictName(effective));
      if (effective == analysis::PartitionVerdict::kPinned &&
          !reason.empty()) {
        out += ",\"pinned_reason\":";
        AppendJsonString(out, reason);
      }
    }
    if (info.state != nullptr) {
      // Pass-4 static bound plus the live accounting it promises to cover.
      out += ",\"state_bound\":" + info.state->ToJson();
      if (info.factory != nullptr) {
        out += ",\"state_bytes\":" + std::to_string(info.factory->state_bytes());
        out += ",\"state_high_water_bytes\":" +
               std::to_string(info.factory->state_bytes_high_water());
      }
    }
    out += "}";
  }
  out += "]\n";
  return out;
}

}  // namespace datacell
