#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace datacell {

namespace {

constexpr size_t kMaxRequestBytes = 8 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

/// Parses "GET /path?query HTTP/1.1" into `out`. False on malformed input.
bool ParseRequestLine(const std::string& line, HttpRequest* out) {
  size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  out->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    out->path = std::move(target);
    out->query.clear();
  } else {
    out->path = target.substr(0, qmark);
    out->query = target.substr(qmark + 1);
  }
  return !out->path.empty() && out->path[0] == '/';
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; nothing to do for a scrape endpoint
    }
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

void HttpServer::Handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start(uint16_t port) {
  if (running()) return Status::FailedPrecondition("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed: " +
                            std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // observability stays local
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                                ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 16) < 0) {
    Status s =
        Status::Internal("listen() failed: " + std::string(strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running()) return;
  stop_requested_.store(true, std::memory_order_release);
  uint64_t one = 1;
  // Wake the epoll wait; a failed write still stops via the peer close race
  // below, it just takes until the next event.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  running_.store(false, std::memory_order_release);
}

void HttpServer::Loop() {
  constexpr int kMaxEvents = 16;
  epoll_event events[kMaxEvents];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, /*timeout_ms=*/500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) continue;  // Stop() signal; loop condition exits
      if (fd == listen_fd_) {
        int conn = ::accept(listen_fd_, nullptr, nullptr);
        if (conn >= 0) {
          // Requests are tiny and handlers fast: serve synchronously on this
          // thread rather than juggling per-connection read state.
          ServeConnection(conn);
          ::close(conn);
        }
      }
    }
  }
}

void HttpServer::ServeConnection(int fd) {
  // Blocking read with a timeout so a stalled client cannot wedge the loop.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  std::string buf;
  char chunk[1024];
  // Read until the header terminator; the endpoints take no request bodies.
  while (buf.find("\r\n\r\n") == std::string::npos &&
         buf.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<size_t>(n));
    if (buf.size() > kMaxRequestBytes) break;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  HttpResponse resp;
  HttpRequest req;
  size_t eol = buf.find("\r\n");
  if (eol == std::string::npos) eol = buf.find('\n');
  if (eol == std::string::npos || buf.size() > kMaxRequestBytes ||
      !ParseRequestLine(buf.substr(0, eol), &req)) {
    resp.status = 400;
    resp.body = "bad request\n";
  } else if (req.method != "GET") {
    resp.status = 405;
    resp.body = "only GET is supported\n";
  } else {
    auto it = handlers_.find(req.path);
    if (it == handlers_.end()) {
      resp.status = 404;
      resp.body = "not found\n";
    } else {
      resp = it->second(req);
    }
  }

  std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += resp.body;
  SendAll(fd, out);
}

}  // namespace datacell
