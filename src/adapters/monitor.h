#ifndef DATACELL_ADAPTERS_MONITOR_H_
#define DATACELL_ADAPTERS_MONITOR_H_

#include <functional>
#include <map>
#include <string>

#include "common/clock.h"
#include "common/metrics_registry.h"
#include "core/transition.h"
#include "storage/column_batch.h"
#include "storage/schema.h"

namespace datacell {

/// Self-observation receptor (the "system telemetry" counterpart of the CSV
/// receptor): on a configurable tick it snapshots the engine's metrics
/// registry, diffs the counters against the previous tick and appends the
/// result as typed tuples to the reserved system streams
///
///   sys.transitions (transition, fires, tuples, fire_latency_p99_us, shard)
///   sys.baskets     (name, occupancy, appended, shed, shard)
///   sys.queries     (query, e2e_latency_p99_us, emitted)
///
/// each row stamped with the implicit ts column by the receiving basket.
/// The streams are ordinary catalog baskets, so continuous queries compose
/// over them — `select * from [select * from sys.baskets] b where
/// b.occupancy > 100000` is an alert stream fed by the engine itself, and
/// its own firings show up in the next tick's telemetry.
///
/// The monitor deliberately knows nothing about the engine: it sees a
/// snapshot function and a delivery function, both supplied at wiring time,
/// which keeps this adapter out of the core dependency cycle and makes it
/// testable against hand-built snapshots.
class MonitorReceptor : public Transition {
 public:
  /// Produces a fresh registry snapshot (the engine binds
  /// Engine::MetricsSnapshot, which refreshes the pull-side gauges first).
  using SnapshotFn = std::function<MetricsSnapshotData()>;
  /// Routes one telemetry batch into the named system stream.
  using DeliverFn =
      std::function<Status(const std::string& stream, ColumnBatch&& batch)>;

  static constexpr const char* kTransitionsStream = "sys.transitions";
  static constexpr const char* kBasketsStream = "sys.baskets";
  static constexpr const char* kQueriesStream = "sys.queries";

  /// User schemas (without the implicit ts) of the three system streams.
  static Schema TransitionsSchema();
  static Schema BasketsSchema();
  static Schema QueriesSchema();

  /// First tick fires immediately (deltas from zero, i.e. absolute values);
  /// subsequent ticks fire every `tick_us` of the supplied clock.
  /// `shard_index` stamps every sys.transitions / sys.baskets row, so a
  /// sharded deployment's unioned telemetry stays attributable per shard
  /// (0 for standalone engines).
  MonitorReceptor(std::string name, SnapshotFn snapshot, DeliverFn deliver,
                  const Clock* clock, int64_t tick_us, int shard_index = 0);

  bool Ready() const override;
  Result<int64_t> Fire() override;

  int64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

 private:
  /// Counter value at the previous tick, keyed by rendered metric name.
  int64_t PrevValue(const std::string& key) const;

  SnapshotFn snapshot_;
  DeliverFn deliver_;
  const Clock* clock_;
  int64_t tick_us_;
  int64_t shard_index_;
  // Written only inside Fire() (exactly-once via the scheduler claim);
  // Ready() reads it from sweep threads, hence atomic.
  std::atomic<Timestamp> next_tick_{0};
  std::map<std::string, int64_t> prev_counters_;  // Fire()-private state
  std::atomic<int64_t> ticks_{0};
  // Reused across ticks so the steady state allocates nothing.
  ColumnBatch transitions_batch_{TransitionsSchema()};
  ColumnBatch baskets_batch_{BasketsSchema()};
  ColumnBatch queries_batch_{QueriesSchema()};
};

}  // namespace datacell

#endif  // DATACELL_ADAPTERS_MONITOR_H_
