#ifndef DATACELL_ADAPTERS_SINK_H_
#define DATACELL_ADAPTERS_SINK_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "adapters/channel.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "storage/table.h"
#include "storage/types.h"

namespace datacell {

/// Destination for continuous-query results. Emitters deliver result batches
/// here — the "interested clients that have subscribed to a query result"
/// of §2.1. Implementations must be thread-safe.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  /// Delivers one result batch. `now_us` is the delivery time.
  virtual void OnBatch(const Table& batch, Timestamp now_us) = 0;
};

/// Collects all delivered rows (tests, examples).
class CollectingSink : public ResultSink {
 public:
  void OnBatch(const Table& batch, Timestamp now_us) override;

  std::vector<Row> TakeRows();
  std::vector<Row> SnapshotRows() const;
  size_t row_count() const;
  size_t batch_count() const;

 private:
  mutable std::mutex mu_;
  std::vector<Row> rows_;
  size_t batches_ = 0;
};

/// Counts rows/batches without retaining data (benchmarks).
class CountingSink : public ResultSink {
 public:
  void OnBatch(const Table& batch, Timestamp now_us) override;
  int64_t rows() const { return rows_.load(std::memory_order_relaxed); }
  int64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  Timestamp last_delivery_us() const {
    return last_us_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> batches_{0};
  std::atomic<Timestamp> last_us_{0};
};

/// Measures end-to-end response time: for each delivered row, the delta
/// between a timestamp column produced by the query (typically the stream's
/// arrival `ts` selected through) and the delivery instant. This is the
/// per-tuple latency metric Linear Road-style acceptance criteria bound.
class LatencyTrackingSink : public ResultSink {
 public:
  /// `ts_column` indexes the arrival-timestamp column within delivered rows
  /// (delivered batches carry the result ts as their last column; pass the
  /// index of the *input* ts your query projected).
  explicit LatencyTrackingSink(size_t ts_column) : ts_column_(ts_column) {}

  void OnBatch(const Table& batch, Timestamp now_us) override;

  /// Snapshot of the latency samples (microseconds).
  SampleStats latencies_us() const;
  int64_t rows() const;

 private:
  size_t ts_column_;
  mutable std::mutex mu_;
  SampleStats stats_;
};

/// Invokes a callback per batch.
class CallbackSink : public ResultSink {
 public:
  using Callback = std::function<void(const Table&, Timestamp)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}
  void OnBatch(const Table& batch, Timestamp now_us) override {
    cb_(batch, now_us);
  }

 private:
  Callback cb_;
};

/// Writes each result row as a CSV line into a channel (the emitter's
/// outbound wire format).
class ChannelSink : public ResultSink {
 public:
  explicit ChannelSink(Channel* channel) : channel_(channel) {}
  void OnBatch(const Table& batch, Timestamp now_us) override;

 private:
  Channel* channel_;
};

}  // namespace datacell

#endif  // DATACELL_ADAPTERS_SINK_H_
