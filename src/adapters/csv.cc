#include "adapters/csv.h"

namespace datacell {

namespace {

bool NeedsQuoting(const std::string& s) {
  if (s.empty()) return true;  // distinguish empty string from null
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const Value& v, std::string* out) {
  if (v.is_null()) return;  // empty field = null
  if (v.is_string()) {
    const std::string& s = v.string_value();
    if (!NeedsQuoting(s)) {
      *out += s;
      return;
    }
    out->push_back('"');
    for (char c : s) {
      if (c == '"') out->push_back('"');
      out->push_back(c);
    }
    out->push_back('"');
    return;
  }
  *out += v.ToString();
}

}  // namespace

std::string FormatCsvRow(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendField(row[i], &out);
  }
  return out;
}

Result<std::vector<std::string>> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cur.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && cur.empty()) {
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      // Mark quoted-empty as a real empty string by a sentinel prefix the
      // caller strips: we instead record quoting in-band by never treating
      // a quoted field as null (see ParseCsvRow).
      fields.push_back(was_quoted && cur.empty() ? std::string("\x01") : cur);
      cur.clear();
      was_quoted = false;
      ++i;
      continue;
    }
    cur.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote in CSV line");
  }
  fields.push_back(was_quoted && cur.empty() ? std::string("\x01") : cur);
  return fields;
}

Result<Row> ParseCsvRow(std::string_view line, const Schema& schema) {
  DC_ASSIGN_OR_RETURN(std::vector<std::string> fields, SplitCsvLine(line));
  if (fields.size() != schema.num_fields()) {
    return Status::ParseError(
        "tuple arity " + std::to_string(fields.size()) +
        " does not match schema arity " + std::to_string(schema.num_fields()));
  }
  Row row;
  row.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    std::string& f = fields[i];
    bool quoted_empty = f == "\x01";
    if (quoted_empty) f.clear();
    DataType t = schema.field(i).type;
    if (f.empty() && !quoted_empty) {
      row.push_back(Value::Null());
      continue;
    }
    if (t == DataType::kString) {
      row.push_back(Value::String(std::move(f)));
      continue;
    }
    DC_ASSIGN_OR_RETURN(Value v, Value::FromString(f, t));
    row.push_back(std::move(v));
  }
  return row;
}

}  // namespace datacell
