#include "adapters/csv.h"

#include <charconv>
#include <cstdio>

#include "common/check.h"
#include "common/string_util.h"

namespace datacell {

namespace {

bool NeedsQuoting(const std::string& s) {
  if (s.empty()) return true;  // distinguish empty string from null
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const Value& v, std::string* out) {
  if (v.is_null()) return;  // empty field = null
  if (v.is_string()) {
    const std::string& s = v.string_value();
    if (!NeedsQuoting(s)) {
      *out += s;
      return;
    }
    out->push_back('"');
    for (char c : s) {
      if (c == '"') out->push_back('"');
      out->push_back(c);
    }
    out->push_back('"');
    return;
  }
  *out += v.ToString();
}

/// One field of a quote-free line, appended straight into its typed column.
/// Mirrors Value::FromString + Bat::AppendValue exactly: empty (or, for
/// non-strings, whitespace-only) fields are null; bools accept the
/// true/false/t/f/1/0 forms; integers via ParseInt64; doubles via from_chars
/// with ParseDouble as the semantic fallback (strtod accepts a superset —
/// hex floats, leading '+', inf/nan — that from_chars rejects).
Status AppendCsvField(std::string_view field, Bat& col) {
  if (col.type() == DataType::kString) {
    if (field.empty()) {
      col.AppendNull();  // unquoted empty = null, as in ParseCsvRow
      return Status::OK();
    }
    col.AppendString(std::string(field));
    return Status::OK();
  }
  std::string_view t = Trim(field);
  if (t.empty()) {
    col.AppendNull();
    return Status::OK();
  }
  switch (col.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      DC_ASSIGN_OR_RETURN(int64_t v, ParseInt64(t));
      col.AppendInt64(v);
      return Status::OK();
    }
    case DataType::kDouble: {
      double v = 0.0;
      auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
      if (ec != std::errc() || ptr != t.data() + t.size()) {
        DC_ASSIGN_OR_RETURN(v, ParseDouble(t));
      }
      col.AppendDouble(v);
      return Status::OK();
    }
    case DataType::kBool: {
      if (EqualsIgnoreCase(t, "true") || EqualsIgnoreCase(t, "1") ||
          EqualsIgnoreCase(t, "t")) {
        col.AppendBool(true);
        return Status::OK();
      }
      if (EqualsIgnoreCase(t, "false") || EqualsIgnoreCase(t, "0") ||
          EqualsIgnoreCase(t, "f")) {
        col.AppendBool(false);
        return Status::OK();
      }
      return Status::ParseError("invalid bool literal: '" + std::string(field) +
                                "'");
    }
    case DataType::kString:
      break;  // handled above
  }
  return Status::Internal("unreachable type");
}

Status ArityError(size_t got, size_t want) {
  return Status::ParseError("tuple arity " + std::to_string(got) +
                            " does not match schema arity " +
                            std::to_string(want));
}

}  // namespace

Status AppendCsvToColumns(std::string_view line, ColumnBatch* batch) {
  DC_CHECK(batch != nullptr);
  const Schema& schema = batch->schema();
  if (line.find('"') != std::string_view::npos) {
    // Quoted fields: reuse the general row parser, then transpose the one
    // validated row (rare path; quoting implies string payload anyway).
    DC_ASSIGN_OR_RETURN(Row row, ParseCsvRow(line, schema));
    batch->AppendRowUnchecked(row);
    return Status::OK();
  }
  size_t rollback = batch->num_rows();
  size_t n_cols = schema.num_fields();
  size_t col = 0;
  size_t start = 0;
  Status st = Status::OK();
  for (;;) {
    size_t comma = line.find(',', start);
    std::string_view field =
        comma == std::string_view::npos
            ? line.substr(start)
            : line.substr(start, comma - start);
    if (col >= n_cols) {
      // Count the remaining fields for the same message the split path gives.
      size_t total = col + 1;
      while (comma != std::string_view::npos) {
        comma = line.find(',', comma + 1);
        ++total;
      }
      st = ArityError(total, n_cols);
      break;
    }
    st = AppendCsvField(field, batch->column(col));
    if (!st.ok()) break;
    ++col;
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (st.ok() && col != n_cols) st = ArityError(col, n_cols);
  if (!st.ok()) {
    batch->TruncateTo(rollback);
    return st;
  }
  return Status::OK();
}

std::string FormatCsvRow(const Row& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendField(row[i], &out);
  }
  return out;
}

void FormatCsvLine(const ColumnBatch& batch, size_t row, std::string* out) {
  out->clear();
  // Numeric rendering matches Value::ToString exactly (%lld / %.6g), so a
  // columnar-formatted line is byte-identical to the row path's.
  char buf[32];
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    if (c > 0) out->push_back(',');
    const Bat& col = batch.column(c);
    if (col.IsNull(row)) continue;  // empty field = null
    switch (col.type()) {
      case DataType::kInt64:
      case DataType::kTimestamp:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(col.Int64At(row)));
        *out += buf;
        break;
      case DataType::kDouble:
        std::snprintf(buf, sizeof(buf), "%.6g", col.DoubleAt(row));
        *out += buf;
        break;
      case DataType::kBool:
        *out += col.BoolAt(row) ? "true" : "false";
        break;
      case DataType::kString: {
        const std::string& s = col.StringAt(row);
        if (!NeedsQuoting(s)) {
          *out += s;
          break;
        }
        out->push_back('"');
        for (char ch : s) {
          if (ch == '"') out->push_back('"');
          out->push_back(ch);
        }
        out->push_back('"');
        break;
      }
    }
  }
}

Result<std::vector<std::string>> SplitCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  bool was_quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cur.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && cur.empty()) {
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      // Mark quoted-empty as a real empty string by a sentinel prefix the
      // caller strips: we instead record quoting in-band by never treating
      // a quoted field as null (see ParseCsvRow).
      fields.push_back(was_quoted && cur.empty() ? std::string("\x01") : cur);
      cur.clear();
      was_quoted = false;
      ++i;
      continue;
    }
    cur.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote in CSV line");
  }
  fields.push_back(was_quoted && cur.empty() ? std::string("\x01") : cur);
  return fields;
}

Result<Row> ParseCsvRow(std::string_view line, const Schema& schema) {
  DC_ASSIGN_OR_RETURN(std::vector<std::string> fields, SplitCsvLine(line));
  if (fields.size() != schema.num_fields()) {
    return Status::ParseError(
        "tuple arity " + std::to_string(fields.size()) +
        " does not match schema arity " + std::to_string(schema.num_fields()));
  }
  Row row;
  row.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    std::string& f = fields[i];
    bool quoted_empty = f == "\x01";
    if (quoted_empty) f.clear();
    DataType t = schema.field(i).type;
    if (f.empty() && !quoted_empty) {
      row.push_back(Value::Null());
      continue;
    }
    if (t == DataType::kString) {
      row.push_back(Value::String(std::move(f)));
      continue;
    }
    DC_ASSIGN_OR_RETURN(Value v, Value::FromString(f, t));
    row.push_back(std::move(v));
  }
  return row;
}

}  // namespace datacell
