#include "adapters/generator.h"

#include "common/check.h"

namespace datacell {

UniformRowGenerator::UniformRowGenerator(std::vector<ColumnSpec> columns,
                                         uint64_t seed)
    : columns_(std::move(columns)), rng_(seed) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    std::string col = "c";
    col += std::to_string(i);
    schema_.AddField(Field{std::move(col), columns_[i].type});
  }
}

Row UniformRowGenerator::Next() {
  Row row;
  row.reserve(columns_.size());
  for (const ColumnSpec& c : columns_) {
    switch (c.type) {
      case DataType::kInt64: {
        int64_t v;
        if (c.zipf_theta > 0.0) {
          v = c.int_min + rng_.Zipf(c.int_max - c.int_min + 1, c.zipf_theta);
        } else {
          v = rng_.Uniform(c.int_min, c.int_max);
        }
        row.push_back(Value::Int64(v));
        break;
      }
      case DataType::kDouble:
        row.push_back(Value::Double(rng_.UniformReal(c.real_min, c.real_max)));
        break;
      case DataType::kString: {
        std::string s = "s";
        s += std::to_string(rng_.Uniform(0, c.cardinality - 1));
        row.push_back(Value::String(std::move(s)));
        break;
      }
      case DataType::kBool:
        row.push_back(Value::Bool(rng_.Bernoulli(0.5)));
        break;
      case DataType::kTimestamp:
        row.push_back(Value::TimestampVal(rng_.Uniform(c.int_min, c.int_max)));
        break;
    }
  }
  return row;
}

void UniformRowGenerator::NextBatchColumns(size_t n, ColumnBatch* out) {
  DC_CHECK_EQ(out->num_columns(), columns_.size());
  // Row-major draw order, exactly as Next(): the RNG stream (and therefore
  // the generated data) is identical whether rows or columns are requested.
  for (size_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      const ColumnSpec& c = columns_[i];
      Bat& col = out->column(i);
      switch (c.type) {
        case DataType::kInt64: {
          int64_t v;
          if (c.zipf_theta > 0.0) {
            v = c.int_min + rng_.Zipf(c.int_max - c.int_min + 1, c.zipf_theta);
          } else {
            v = rng_.Uniform(c.int_min, c.int_max);
          }
          col.AppendInt64(v);
          break;
        }
        case DataType::kDouble:
          col.AppendDouble(rng_.UniformReal(c.real_min, c.real_max));
          break;
        case DataType::kString: {
          std::string s = "s";
          s += std::to_string(rng_.Uniform(0, c.cardinality - 1));
          col.AppendString(std::move(s));
          break;
        }
        case DataType::kBool:
          col.AppendBool(rng_.Bernoulli(0.5));
          break;
        case DataType::kTimestamp:
          col.AppendInt64(rng_.Uniform(c.int_min, c.int_max));
          break;
      }
    }
  }
}

Row OutOfOrderGenerator::Next() {
  // Keep the buffer primed with `max_displacement` upcoming rows and pick
  // either the head (in order) or a random buffered row (displaced).
  while (buffer_.size() < max_displacement_ + 1) {
    buffer_.push_back(inner_->Next());
  }
  size_t pick = 0;
  if (max_displacement_ > 0 && rng_.Bernoulli(disorder_fraction_)) {
    pick = static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(buffer_.size()) - 1));
  }
  Row out = std::move(buffer_[pick]);
  buffer_.erase(buffer_.begin() + static_cast<ptrdiff_t>(pick));
  return out;
}

}  // namespace datacell
