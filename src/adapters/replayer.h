#ifndef DATACELL_ADAPTERS_REPLAYER_H_
#define DATACELL_ADAPTERS_REPLAYER_H_

#include <atomic>
#include <memory>
#include <thread>

#include "adapters/channel.h"
#include "adapters/generator.h"
#include "common/result.h"

namespace datacell {

/// Drives a channel like a live event source: formats generated rows as
/// textual tuples and pushes them at a target rate on its own thread. The
/// wire-side counterpart of a receptor — together they make a full
/// closed-loop deployment (generator -> wire -> receptor -> baskets).
class Replayer {
 public:
  struct Options {
    /// Target ingest rate; the replayer sends `batch_size` rows then sleeps
    /// whatever keeps the long-run average at this rate.
    double rows_per_second = 10000;
    size_t batch_size = 256;
    /// Stop after this many rows (0 = run until Stop()).
    int64_t total_rows = 0;
  };

  Replayer(Channel* channel, std::unique_ptr<RowGenerator> generator,
           Options options);
  ~Replayer();

  Replayer(const Replayer&) = delete;
  Replayer& operator=(const Replayer&) = delete;

  /// Spawns the feeding thread. One-shot.
  Status Start();
  /// Stops and joins. Idempotent; also called by the destructor.
  void Stop();

  /// True once `total_rows` have been sent (never true for unbounded runs).
  bool finished() const { return finished_.load(std::memory_order_acquire); }
  int64_t rows_sent() const { return sent_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  Channel* channel_;
  std::unique_ptr<RowGenerator> generator_;
  Options options_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> finished_{false};
  std::atomic<int64_t> sent_{0};
};

}  // namespace datacell

#endif  // DATACELL_ADAPTERS_REPLAYER_H_
