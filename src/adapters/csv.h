#ifndef DATACELL_ADAPTERS_CSV_H_
#define DATACELL_ADAPTERS_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/column_batch.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace datacell {

/// Textual flat-tuple codec: comma-separated values, one tuple per line.
/// Strings containing commas, quotes or newlines are double-quoted with ""
/// as the quote escape. An empty unquoted field is null.
std::string FormatCsvRow(const Row& row);

/// Parses `line` into a typed tuple matching `schema` exactly (arity and
/// types are validated — the receptor's "validate their structure" duty).
Result<Row> ParseCsvRow(std::string_view line, const Schema& schema);

/// Splits a raw CSV line into unescaped fields.
Result<std::vector<std::string>> SplitCsvLine(std::string_view line);

/// Parses one CSV line directly into `batch`'s typed columns (one value per
/// column, matching batch->schema() positionally) — the zero-boxing ingest
/// path: quote-free lines are split as string_views and parsed in place with
/// no intermediate Row, Value or field-string allocation for fixed-width
/// types. Lines containing quotes take the general ParseCsvRow path.
/// Semantics are identical to ParseCsvRow + append. On error the batch is
/// left unchanged (the partial row is rolled back).
Status AppendCsvToColumns(std::string_view line, ColumnBatch* batch);

/// Formats row `row` of `batch` into `out` (cleared first), byte-identical
/// to FormatCsvRow on the equivalent Row — the replayer's columnar egress:
/// values stream from the typed buffers into the line with no Value boxing.
void FormatCsvLine(const ColumnBatch& batch, size_t row, std::string* out);

}  // namespace datacell

#endif  // DATACELL_ADAPTERS_CSV_H_
