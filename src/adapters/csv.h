#ifndef DATACELL_ADAPTERS_CSV_H_
#define DATACELL_ADAPTERS_CSV_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace datacell {

/// Textual flat-tuple codec: comma-separated values, one tuple per line.
/// Strings containing commas, quotes or newlines are double-quoted with ""
/// as the quote escape. An empty unquoted field is null.
std::string FormatCsvRow(const Row& row);

/// Parses `line` into a typed tuple matching `schema` exactly (arity and
/// types are validated — the receptor's "validate their structure" duty).
Result<Row> ParseCsvRow(std::string_view line, const Schema& schema);

/// Splits a raw CSV line into unescaped fields.
Result<std::vector<std::string>> SplitCsvLine(std::string_view line);

}  // namespace datacell

#endif  // DATACELL_ADAPTERS_CSV_H_
