#include "adapters/channel.h"

#include <chrono>

#include "common/lock_order.h"

namespace datacell {

void Channel::SetWakeCallback(std::function<void()> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  wake_cb_ = std::move(cb);
}

void Channel::NotifyWake() {
  std::function<void()> cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DC_LOCK_ORDER(&mu_, "channel", "channel");
    cb = wake_cb_;
  }
  if (cb) cb();
}

void Channel::Push(std::string line) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DC_LOCK_ORDER(&mu_, "channel", "channel");
    if (capacity_ > 0 && lines_.size() >= capacity_) {
      lines_.pop_front();
      ++total_dropped_;
    }
    lines_.push_back(std::move(line));
    ++total_pushed_;
  }
  cv_.notify_one();
  NotifyWake();
}

void Channel::PushBatch(std::vector<std::string> lines) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DC_LOCK_ORDER(&mu_, "channel", "channel");
    for (std::string& line : lines) {
      if (capacity_ > 0 && lines_.size() >= capacity_) {
        lines_.pop_front();
        ++total_dropped_;
      }
      lines_.push_back(std::move(line));
      ++total_pushed_;
    }
  }
  cv_.notify_all();
  NotifyWake();
}

bool Channel::TryPop(std::string* out) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  if (lines_.empty()) return false;
  *out = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

std::vector<std::string> Channel::DrainUpTo(size_t max) {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  size_t n = std::min(max, lines_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(lines_.front()));
    lines_.pop_front();
  }
  return out;
}

size_t Channel::DrainInto(std::vector<std::string>* out, size_t max) {
  out->clear();
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  size_t n = std::min(max, lines_.size());
  if (out->capacity() < n) out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(lines_.front()));
    lines_.pop_front();
  }
  return n;
}

bool Channel::PopBlocking(std::string* out, int64_t timeout_us) {
  std::unique_lock<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  cv_.wait_for(lock, std::chrono::microseconds(timeout_us),
               [&] { return !lines_.empty() || closed_; });
  if (lines_.empty()) return false;
  *out = std::move(lines_.front());
  lines_.pop_front();
  return true;
}

void Channel::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DC_LOCK_ORDER(&mu_, "channel", "channel");
    closed_ = true;
  }
  cv_.notify_all();
  NotifyWake();
}

bool Channel::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  return closed_;
}

size_t Channel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  return lines_.size();
}

int64_t Channel::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  return total_pushed_;
}

int64_t Channel::total_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "channel", "channel");
  return total_dropped_;
}

}  // namespace datacell
