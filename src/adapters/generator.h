#ifndef DATACELL_ADAPTERS_GENERATOR_H_
#define DATACELL_ADAPTERS_GENERATOR_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/random.h"
#include "storage/column_batch.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace datacell {

/// Produces a synthetic stream of typed tuples. Generators are deterministic
/// given their seed, so every benchmark run is reproducible.
class RowGenerator {
 public:
  virtual ~RowGenerator() = default;
  virtual Row Next() = 0;
  std::vector<Row> NextBatch(size_t n) {
    std::vector<Row> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(Next());
    return out;
  }
  /// Appends `n` rows straight into `out`'s typed columns. The default
  /// transposes through Next(); generators that know their layout override
  /// with direct appends (no Row/Value boxing). Draws happen in the same
  /// order either way, so for a given seed the row and columnar fills
  /// produce identical data.
  virtual void NextBatchColumns(size_t n, ColumnBatch* out) {
    for (size_t i = 0; i < n; ++i) out->AppendRowUnchecked(Next());
  }
  /// Schema of the generated rows when the generator knows it statically —
  /// lets columnar consumers (the replayer) size a ColumnBatch. Null means
  /// rows-only.
  virtual const Schema* schema() const { return nullptr; }
};

/// Per-column value distribution for UniformRowGenerator.
struct ColumnSpec {
  DataType type = DataType::kInt64;
  // kInt64: uniform in [int_min, int_max]; with zipf_theta > 0, skewed.
  int64_t int_min = 0;
  int64_t int_max = 1000000;
  double zipf_theta = 0.0;
  // kDouble: uniform in [real_min, real_max).
  double real_min = 0.0;
  double real_max = 1.0;
  // kString: "s<uniform int in [0, cardinality)>".
  int64_t cardinality = 100;
};

/// Independent per-column draws — the generic selection/aggregation workload
/// generator used by most benchmarks.
class UniformRowGenerator : public RowGenerator {
 public:
  UniformRowGenerator(std::vector<ColumnSpec> columns, uint64_t seed);

  Row Next() override;
  /// Columnar fast path: draws in the same per-row, per-column order as
  /// Next() but appends into the typed buffers directly.
  void NextBatchColumns(size_t n, ColumnBatch* out) override;
  const Schema* schema() const override { return &schema_; }

  /// Schema matching the generated rows, with columns named c0, c1, ...
  Schema MakeSchema() const { return schema_; }

 private:
  std::vector<ColumnSpec> columns_;
  Schema schema_;
  Rng rng_;
};

/// Wraps a generator and re-orders its output with bounded disorder: each
/// row is delayed by up to `max_displacement` positions. Exercises the
/// paper's out-of-order processing claim (§2.2) — baskets are multisets, so
/// disorder must not change query answers.
class OutOfOrderGenerator : public RowGenerator {
 public:
  OutOfOrderGenerator(std::unique_ptr<RowGenerator> inner,
                      size_t max_displacement, double disorder_fraction,
                      uint64_t seed)
      : inner_(std::move(inner)),
        max_displacement_(max_displacement),
        disorder_fraction_(disorder_fraction),
        rng_(seed) {}

  Row Next() override;
  const Schema* schema() const override { return inner_->schema(); }

 private:
  std::unique_ptr<RowGenerator> inner_;
  size_t max_displacement_;
  double disorder_fraction_;
  Rng rng_;
  std::deque<Row> buffer_;
};

}  // namespace datacell

#endif  // DATACELL_ADAPTERS_GENERATOR_H_
