#include "adapters/monitor.h"

#include <string_view>
#include <utility>

namespace datacell {

namespace {

/// The value of label `key` in `labels`, or "" when absent.
const std::string& LabelValue(const MetricLabels& labels,
                              std::string_view key) {
  static const std::string kEmpty;
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return kEmpty;
}

}  // namespace

Schema MonitorReceptor::TransitionsSchema() {
  Schema s;
  s.AddField(Field{"transition", DataType::kString});
  s.AddField(Field{"fires", DataType::kInt64});
  s.AddField(Field{"tuples", DataType::kInt64});
  s.AddField(Field{"fire_latency_p99_us", DataType::kDouble});
  s.AddField(Field{"shard", DataType::kInt64});
  return s;
}

Schema MonitorReceptor::BasketsSchema() {
  Schema s;
  // "basket" is a reserved SQL word, so the identifying column is "name".
  s.AddField(Field{"name", DataType::kString});
  s.AddField(Field{"occupancy", DataType::kInt64});
  s.AddField(Field{"appended", DataType::kInt64});
  s.AddField(Field{"shed", DataType::kInt64});
  s.AddField(Field{"shard", DataType::kInt64});
  return s;
}

Schema MonitorReceptor::QueriesSchema() {
  Schema s;
  s.AddField(Field{"query", DataType::kString});
  s.AddField(Field{"e2e_latency_p99_us", DataType::kDouble});
  s.AddField(Field{"emitted", DataType::kInt64});
  return s;
}

MonitorReceptor::MonitorReceptor(std::string name, SnapshotFn snapshot,
                                 DeliverFn deliver, const Clock* clock,
                                 int64_t tick_us, int shard_index)
    : Transition(std::move(name), TransitionKind::kReceptor),
      snapshot_(std::move(snapshot)),
      deliver_(std::move(deliver)),
      clock_(clock),
      tick_us_(tick_us),
      shard_index_(shard_index) {}

bool MonitorReceptor::Ready() const {
  return clock_->Now() >= next_tick_.load(std::memory_order_relaxed);
}

int64_t MonitorReceptor::PrevValue(const std::string& key) const {
  auto it = prev_counters_.find(key);
  return it == prev_counters_.end() ? 0 : it->second;
}

Result<int64_t> MonitorReceptor::Fire() {
  Timestamp start = clock_->Now();
  if (start < next_tick_.load(std::memory_order_relaxed)) return 0;

  MetricsSnapshotData snap = snapshot_();
  // Index the snapshot once: counters by rendered name (also the delta
  // baseline for the next tick), histograms by rendered name.
  std::map<std::string, int64_t> counters;
  for (const CounterSnapshot& c : snap.counters) {
    counters[RenderMetricName(c.name, c.labels)] = c.value;
  }
  std::map<std::string, const HistogramSnapshot*> histograms;
  for (const HistogramSnapshot& h : snap.histograms) {
    histograms[RenderMetricName(h.name, h.labels)] = &h;
  }
  auto delta = [&](const std::string& key) {
    auto it = counters.find(key);
    return it == counters.end() ? int64_t{0} : it->second - PrevValue(key);
  };
  auto p99 = [&](const std::string& key) {
    auto it = histograms.find(key);
    return it == histograms.end() || it->second->count == 0
               ? 0.0
               : it->second->Percentile(0.99);
  };

  // sys.transitions: one row per transition (the per-fire series carries the
  // since-last-tick deltas; the p99 is lifetime, the histogram is additive).
  for (const CounterSnapshot& c : snap.counters) {
    if (c.name != "datacell_transition_fires_total") continue;
    const std::string& tname = LabelValue(c.labels, "transition");
    transitions_batch_.column(0).AppendString(tname);
    transitions_batch_.column(1).AppendInt64(
        c.value - PrevValue(RenderMetricName(c.name, c.labels)));
    transitions_batch_.column(2).AppendInt64(
        delta(RenderMetricName("datacell_transition_tuples_total", c.labels)));
    transitions_batch_.column(3).AppendDouble(p99(
        RenderMetricName("datacell_transition_fire_latency_us", c.labels)));
    transitions_batch_.column(4).AppendInt64(shard_index_);
  }

  // sys.baskets: one row per wired basket (the occupancy gauge is the
  // instantaneous sample; appended/shed are since-last-tick deltas).
  for (const GaugeSnapshot& g : snap.gauges) {
    if (g.name != "datacell_basket_tuples") continue;
    baskets_batch_.column(0).AppendString(LabelValue(g.labels, "basket"));
    baskets_batch_.column(1).AppendInt64(g.value);
    baskets_batch_.column(2).AppendInt64(
        delta(RenderMetricName("datacell_basket_appended_total", g.labels)));
    baskets_batch_.column(3).AppendInt64(
        delta(RenderMetricName("datacell_basket_shed_total", g.labels)));
    baskets_batch_.column(4).AppendInt64(shard_index_);
  }

  // sys.queries: one row per registered query, identified by its emitter
  // (every query has exactly one; "emitted" counts tuples it delivered).
  for (const CounterSnapshot& c : snap.counters) {
    if (c.name != "datacell_transition_fires_total") continue;
    if (LabelValue(c.labels, "kind") != "emitter") continue;
    const std::string& tname = LabelValue(c.labels, "transition");
    constexpr std::string_view kPrefix = "emitter_";
    std::string qname = tname.substr(0, kPrefix.size()) == kPrefix
                            ? tname.substr(kPrefix.size())
                            : tname;
    queries_batch_.column(0).AppendString(qname);
    queries_batch_.column(1).AppendDouble(
        p99(RenderMetricName("datacell_query_e2e_latency_us",
                             {{"query", qname}})));
    queries_batch_.column(2).AppendInt64(
        delta(RenderMetricName("datacell_transition_tuples_total", c.labels)));
  }

  int64_t rows = static_cast<int64_t>(transitions_batch_.num_rows() +
                                      baskets_batch_.num_rows() +
                                      queries_batch_.num_rows());
  if (!transitions_batch_.empty()) {
    DC_RETURN_NOT_OK(
        deliver_(kTransitionsStream, std::move(transitions_batch_)));
  }
  if (!baskets_batch_.empty()) {
    DC_RETURN_NOT_OK(deliver_(kBasketsStream, std::move(baskets_batch_)));
  }
  if (!queries_batch_.empty()) {
    DC_RETURN_NOT_OK(deliver_(kQueriesStream, std::move(queries_batch_)));
  }
  prev_counters_ = std::move(counters);

  // Advance relative to the scheduled tick so a late fire does not shift the
  // grid, but never into the past (no catch-up bursts after a stall).
  Timestamp next = next_tick_.load(std::memory_order_relaxed) + tick_us_;
  if (next <= start) next = start + tick_us_;
  next_tick_.store(next, std::memory_order_relaxed);
  ticks_.fetch_add(1, std::memory_order_relaxed);
  RecordRun(rows, clock_->Now() - start);
  return rows;
}

}  // namespace datacell
