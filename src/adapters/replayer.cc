#include "adapters/replayer.h"

#include <chrono>

#include "adapters/csv.h"
#include "common/check.h"

namespace datacell {

Replayer::Replayer(Channel* channel, std::unique_ptr<RowGenerator> generator,
                   Options options)
    : channel_(channel),
      generator_(std::move(generator)),
      options_(options) {
  DC_CHECK(channel_ != nullptr);
  DC_CHECK(generator_ != nullptr);
  DC_CHECK_GT(options_.rows_per_second, 0.0);
  DC_CHECK_GT(options_.batch_size, 0u);
}

Replayer::~Replayer() { Stop(); }

Status Replayer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition("replayer already started");
  }
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Replayer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void Replayer::Loop() {
  using Clock = std::chrono::steady_clock;
  auto start = Clock::now();
  int64_t sent = 0;
  // Columnar formatting path when the generator publishes its schema: rows
  // are drawn straight into typed buffers and streamed onto the wire with
  // no Row/Value boxing. The batch and scratch line are reused across
  // iterations; only the channel-owned line strings are allocated.
  const Schema* schema = generator_->schema();
  ColumnBatch batch;
  if (schema != nullptr) batch.Reset(*schema);
  std::string scratch;
  while (!stop_.load(std::memory_order_acquire)) {
    size_t n = options_.batch_size;
    if (options_.total_rows > 0) {
      int64_t remaining = options_.total_rows - sent;
      if (remaining <= 0) break;
      n = std::min(n, static_cast<size_t>(remaining));
    }
    std::vector<std::string> lines;
    lines.reserve(n);
    if (schema != nullptr) {
      batch.Clear();
      generator_->NextBatchColumns(n, &batch);
      for (size_t r = 0; r < n; ++r) {
        FormatCsvLine(batch, r, &scratch);
        lines.push_back(scratch);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        lines.push_back(FormatCsvRow(generator_->Next()));
      }
    }
    channel_->PushBatch(std::move(lines));
    sent += static_cast<int64_t>(n);
    sent_.store(sent, std::memory_order_relaxed);
    // Sleep so the long-run average matches the target rate.
    auto due = start + std::chrono::microseconds(static_cast<int64_t>(
                           1e6 * static_cast<double>(sent) /
                           options_.rows_per_second));
    std::this_thread::sleep_until(due);
  }
  if (options_.total_rows > 0 && sent >= options_.total_rows) {
    finished_.store(true, std::memory_order_release);
  }
}

}  // namespace datacell
