#include "adapters/sink.h"

#include "adapters/csv.h"

namespace datacell {

void CollectingSink::OnBatch(const Table& batch, Timestamp /*now_us*/) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    rows_.push_back(batch.GetRow(i));
  }
  ++batches_;
}

std::vector<Row> CollectingSink::TakeRows() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> out = std::move(rows_);
  rows_.clear();
  return out;
}

std::vector<Row> CollectingSink::SnapshotRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

size_t CollectingSink::row_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

size_t CollectingSink::batch_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

void CountingSink::OnBatch(const Table& batch, Timestamp now_us) {
  rows_.fetch_add(static_cast<int64_t>(batch.num_rows()),
                  std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  last_us_.store(now_us, std::memory_order_relaxed);
}

void LatencyTrackingSink::OnBatch(const Table& batch, Timestamp now_us) {
  if (batch.num_rows() == 0 || ts_column_ >= batch.num_columns()) return;
  const Bat& ts = *batch.column(ts_column_);
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < ts.size(); ++i) {
    if (ts.IsNull(i)) continue;
    stats_.Add(static_cast<double>(now_us - ts.Int64At(i)));
  }
}

SampleStats LatencyTrackingSink::latencies_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t LatencyTrackingSink::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(stats_.count());
}

void ChannelSink::OnBatch(const Table& batch, Timestamp /*now_us*/) {
  std::vector<std::string> lines;
  lines.reserve(batch.num_rows());
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    lines.push_back(FormatCsvRow(batch.GetRow(i)));
  }
  channel_->PushBatch(std::move(lines));
}

}  // namespace datacell
