#ifndef DATACELL_ADAPTERS_CHANNEL_H_
#define DATACELL_ADAPTERS_CHANNEL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace datacell {

/// In-process communication channel carrying flat textual tuples — the
/// "simple textual interface for exchanging flat relational tuples" of §2.1.
/// Multiple producers, multiple consumers; FIFO per producer. A socket-backed
/// receptor would feed the same interface, so the ingest code path is
/// identical to a networked deployment.
class Channel {
 public:
  Channel() = default;
  explicit Channel(size_t capacity) : capacity_(capacity) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues one line. When a capacity is set and reached, the oldest line
  /// is dropped (load shedding at the edge) and the drop counter increases.
  void Push(std::string line);
  void PushBatch(std::vector<std::string> lines);

  /// Non-blocking pop; false when empty.
  bool TryPop(std::string* out);
  /// Pops up to `max` lines without blocking.
  std::vector<std::string> DrainUpTo(size_t max);
  /// DrainUpTo into a caller-owned vector (cleared first): a long-lived
  /// receptor reuses the same line buffer every fire instead of allocating a
  /// fresh vector. Returns the number of lines drained.
  size_t DrainInto(std::vector<std::string>* out, size_t max);
  /// Blocks until a line arrives, the channel closes, or `timeout_us`
  /// elapses; false on timeout/closed-and-empty.
  bool PopBlocking(std::string* out, int64_t timeout_us);

  /// Marks end-of-stream; producers must not push afterwards.
  void Close();
  bool closed() const;

  /// Installs a callback invoked (outside the channel lock) after every push
  /// and on close. The engine wires attached receptors' channels to the
  /// scheduler's wakeup, so a line arriving on an idle stream fires its
  /// receptor immediately instead of on the next poll tick.
  void SetWakeCallback(std::function<void()> cb);

  size_t size() const;
  bool empty() const { return size() == 0; }
  int64_t total_pushed() const;
  int64_t total_dropped() const;

 private:
  /// Copies the wake callback under the lock and invokes it outside.
  void NotifyWake();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::function<void()> wake_cb_;  // guarded by mu_; invoked outside it
  std::deque<std::string> lines_;
  size_t capacity_ = 0;  // 0 = unbounded
  bool closed_ = false;
  int64_t total_pushed_ = 0;
  int64_t total_dropped_ = 0;
};

}  // namespace datacell

#endif  // DATACELL_ADAPTERS_CHANNEL_H_
