#ifndef DATACELL_LINEARROAD_HISTORY_H_
#define DATACELL_LINEARROAD_HISTORY_H_

#include <memory>

#include "core/engine.h"

namespace datacell {
namespace linearroad {

/// Linear Road's historical queries (types 2/3: account balance and daily
/// expenditure) ask one-time questions over previously assessed tolls. This
/// demonstrates the paper's central selling point — streams and tables live
/// in ONE engine, so the continuous toll query feeds an ordinary table that
/// plain SQL then queries.
///
/// Our tolls are assessed per congested segment (see queries.h), so the
/// historical unit is (day, xway, dir, seg) rather than per-vehicle; the
/// code path (continuous result -> stored history -> one-time SQL) is the
/// faithful part.
class TollHistory {
 public:
  /// Creates the `toll_history` table and subscribes to the toll query's
  /// output; every assessed toll lands as one history row. The engine must
  /// run single-stepped (the sink writes the table between sweeps).
  static Result<std::unique_ptr<TollHistory>> Install(Engine* engine,
                                                      QueryId toll_query);

  /// Total tolls assessed so far on `xway` (type-2 account balance,
  /// aggregated per expressway).
  Result<int64_t> ExpresswayBalance(Engine* engine, int64_t xway) const;

  /// Tolls per (day, xway), most expensive day first (type-3 daily
  /// expenditure report).
  Result<TablePtr> DailyExpenditure(Engine* engine) const;

  int64_t rows_recorded() const {
    return rows_.load(std::memory_order_relaxed);
  }

  static constexpr const char* kTableName = "toll_history";

 private:
  TollHistory() = default;

  std::shared_ptr<ResultSink> sink_;
  std::atomic<int64_t> rows_{0};
};

}  // namespace linearroad
}  // namespace datacell

#endif  // DATACELL_LINEARROAD_HISTORY_H_
