#include "linearroad/queries.h"

#include "linearroad/generator.h"

namespace datacell {
namespace linearroad {

Result<LrQueries> InstallLrQueries(Engine* engine) {
  DC_RETURN_NOT_OK(engine->CreateStream(kLrStreamName, ReportSchema()).status());

  LrQueries out;

  // Segment statistics: LR's 5-minute moving average per segment.
  DC_ASSIGN_OR_RETURN(
      out.segstats,
      engine->SubmitContinuousQuery(
          "segstats",
          "select xway, dir, seg, avg(speed) as avg_speed, count(*) as cars "
          "from [select * from lr] as s "
          "group by xway, dir, seg "
          "window range 300 seconds slide 60 seconds"));

  // Accident detection: four zero-speed reports of one vehicle within 120s
  // (a stopped vehicle reports every 30s, so 4 reports ~ continuously
  // stopped; LR's 2-car rule is approximated per segment downstream).
  DC_ASSIGN_OR_RETURN(
      out.accidents,
      engine->SubmitContinuousQuery(
          "accidents",
          "select xway, dir, seg, vid, count(*) as stopped_reports "
          "from [select * from lr where speed = 0] as s "
          "group by xway, dir, seg, vid "
          "having count(*) >= 4 "
          "window range 120 seconds slide 30 seconds"));

  // Toll computation, cascaded on segstats' output basket: congested
  // segments (avg speed < 40) are priced 2*(cars-50)^2; negative tolls for
  // light traffic clamp at the HAVING-like filter cars > 50.
  DC_ASSIGN_OR_RETURN(
      out.tolls,
      engine->SubmitContinuousQuery(
          "tolls",
          "select xway, dir, seg, avg_speed, 2 * (cars - 50) * (cars - 50) "
          "as toll "
          "from [select * from segstats_out where avg_speed < 40.0] as t "
          "where t.cars > 50"));

  out.segstats_sink = std::make_shared<CountingSink>();
  out.accidents_sink = std::make_shared<CountingSink>();
  out.tolls_sink = std::make_shared<CountingSink>();
  DC_RETURN_NOT_OK(engine->Subscribe(out.segstats, out.segstats_sink));
  DC_RETURN_NOT_OK(engine->Subscribe(out.accidents, out.accidents_sink));
  DC_RETURN_NOT_OK(engine->Subscribe(out.tolls, out.tolls_sink));
  return out;
}

}  // namespace linearroad
}  // namespace datacell
