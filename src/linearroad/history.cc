#include "linearroad/history.h"

#include "common/check.h"

namespace datacell {
namespace linearroad {

Result<std::unique_ptr<TollHistory>> TollHistory::Install(Engine* engine,
                                                          QueryId toll_query) {
  DC_RETURN_NOT_OK(
      engine
          ->ExecuteSql("create table toll_history (day int, xway int, "
                       "dir int, seg int, toll int)")
          .status());
  DC_ASSIGN_OR_RETURN(TablePtr table, engine->catalog().Get(kTableName));

  auto history = std::unique_ptr<TollHistory>(new TollHistory());
  TollHistory* raw = history.get();
  // Toll query output schema: xway, dir, seg, avg_speed, toll (+ result ts).
  history->sink_ = std::make_shared<CallbackSink>(
      [table, raw](const Table& batch, Timestamp /*now*/) {
        size_t ts_col = batch.num_columns() - 1;
        for (size_t i = 0; i < batch.num_rows(); ++i) {
          Row r = batch.GetRow(i);
          int64_t day = r[ts_col].int64_value() / (int64_t{86400} * 1000000);
          Row out{Value::Int64(day), r[0], r[1], r[2], r[4]};
          // Stepped engines deliver between sweeps, so this append does not
          // race with readers; errors here indicate schema drift and abort.
          DC_CHECK_OK(table->AppendRow(out));
          raw->rows_.fetch_add(1, std::memory_order_relaxed);
        }
      });
  DC_RETURN_NOT_OK(engine->Subscribe(toll_query, history->sink_));
  return history;
}

Result<int64_t> TollHistory::ExpresswayBalance(Engine* engine,
                                               int64_t xway) const {
  DC_ASSIGN_OR_RETURN(
      TablePtr result,
      engine->ExecuteSql("select sum(toll) as total from toll_history "
                         "where xway = " +
                         std::to_string(xway)));
  Value total = result->GetRow(0)[0];
  return total.is_null() ? 0 : static_cast<int64_t>(total.AsDouble());
}

Result<TablePtr> TollHistory::DailyExpenditure(Engine* engine) const {
  return engine->ExecuteSql(
      "select day, xway, sum(toll) as spent, count(*) as assessments "
      "from toll_history group by day, xway order by spent desc");
}

}  // namespace linearroad
}  // namespace datacell
