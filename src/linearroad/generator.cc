#include "linearroad/generator.h"

#include <algorithm>
#include <cmath>

namespace datacell {
namespace linearroad {

Row PositionReport::ToRow() const {
  return Row{Value::Int64(time_s), Value::Int64(vid),  Value::Int64(speed),
             Value::Int64(xway),   Value::Int64(lane), Value::Int64(dir),
             Value::Int64(seg),    Value::Int64(pos)};
}

Schema ReportSchema() {
  Schema s;
  for (const char* name :
       {"time", "vid", "speed", "xway", "lane", "dir", "seg", "pos"}) {
    s.AddField(Field{name, DataType::kInt64});
  }
  return s;
}

LrGenerator::LrGenerator(LrConfig config)
    : config_(config), rng_(config.seed) {
  int64_t vid = 0;
  double road_length = config_.segments * kFeetPerSegment;
  for (int x = 0; x < config_.num_xways; ++x) {
    for (int i = 0; i < config_.vehicles_per_xway; ++i) {
      Vehicle v;
      v.vid = vid++;
      v.xway = x;
      v.dir = static_cast<int>(rng_.Uniform(0, 1));
      v.pos_ft = rng_.UniformReal(0.0, road_length);
      v.speed_mph = static_cast<int>(rng_.Uniform(40, 100));
      vehicles_.push_back(v);
    }
  }
}

void LrGenerator::MoveVehicle(Vehicle* v) {
  if (v->stopped_ticks_left > 0) {
    --v->stopped_ticks_left;
    if (v->stopped_ticks_left == 0) {
      v->speed_mph = static_cast<int>(rng_.Uniform(30, 60));
    }
    return;
  }
  // Random speed drift within [10, 100] mph.
  int drift = static_cast<int>(rng_.Uniform(-5, 5));
  v->speed_mph = std::clamp(v->speed_mph + drift, 10, 100);
  // Accident initiation: the vehicle stops where it is; the next vehicle to
  // stop in the same segment completes the benchmark's 2-car accident.
  if (rng_.Bernoulli(config_.accident_prob)) {
    v->stopped_ticks_left = config_.accident_duration_ticks *
                            config_.report_interval_s;
    v->speed_mph = 0;
    ++accidents_started_;
    return;
  }
  // mph -> feet/second = * 5280/3600.
  double fps = v->speed_mph * (kFeetPerSegment / 3600.0);
  double road_length = config_.segments * kFeetPerSegment;
  v->pos_ft += (v->dir == 0 ? fps : -fps);
  // Wrap around (vehicles re-enter; keeps the population constant).
  if (v->pos_ft >= road_length) v->pos_ft -= road_length;
  if (v->pos_ft < 0) v->pos_ft += road_length;
}

std::vector<PositionReport> LrGenerator::Tick() {
  std::vector<PositionReport> out;
  for (Vehicle& v : vehicles_) {
    MoveVehicle(&v);
    // Staggered reporting: vehicle v reports when (now + vid) is a multiple
    // of the report interval, spreading load evenly across seconds.
    if ((now_s_ + v.vid) % config_.report_interval_s != 0) continue;
    PositionReport r;
    r.time_s = now_s_;
    r.vid = v.vid;
    r.speed = v.stopped_ticks_left > 0 ? 0 : v.speed_mph;
    r.xway = v.xway;
    r.lane = v.stopped_ticks_left > 0
                 ? 0
                 : rng_.Uniform(1, 3);  // lane 0 only when stopped
    r.dir = v.dir;
    r.seg = std::clamp<int64_t>(
        static_cast<int64_t>(v.pos_ft / kFeetPerSegment), 0,
        config_.segments - 1);
    r.pos = static_cast<int64_t>(v.pos_ft);
    out.push_back(r);
    ++total_reports_;
  }
  ++now_s_;
  return out;
}

}  // namespace linearroad
}  // namespace datacell
