#ifndef DATACELL_LINEARROAD_DRIVER_H_
#define DATACELL_LINEARROAD_DRIVER_H_

#include <memory>

#include "common/metrics.h"
#include "core/engine.h"
#include "linearroad/generator.h"
#include "linearroad/queries.h"

namespace datacell {
namespace linearroad {

/// Drives a full Linear Road run: one engine tick per simulated second —
/// generate the second's position reports, ingest them, advance the
/// simulated clock, drain the scheduler — while recording the wall-clock
/// processing time of every tick. The LR acceptance criterion is a bounded
/// per-report response time; `tick_time` is our per-second analogue.
class LrDriver {
 public:
  /// `engine` must use a simulated clock (EngineOptions.use_wall_clock =
  /// false); queries must already be installed.
  LrDriver(Engine* engine, LrConfig config);

  /// Runs `seconds` of simulated traffic. Returns non-OK on engine errors.
  Status Run(int64_t seconds);

  const SampleStats& tick_time_us() const { return tick_time_us_; }
  int64_t total_reports() const { return generator_.total_reports(); }
  int64_t accidents_started() const { return generator_.accidents_started(); }

 private:
  Engine* engine_;
  LrGenerator generator_;
  SampleStats tick_time_us_;
};

}  // namespace linearroad
}  // namespace datacell

#endif  // DATACELL_LINEARROAD_DRIVER_H_
