#ifndef DATACELL_LINEARROAD_QUERIES_H_
#define DATACELL_LINEARROAD_QUERIES_H_

#include <memory>
#include <string>

#include "adapters/sink.h"
#include "core/engine.h"

namespace datacell {
namespace linearroad {

/// The Linear Road continuous-query network installed on a DataCell engine.
/// Three cascaded queries demonstrate the paper's "network of queries inside
/// the kernel" (§4):
///
///   lr (position reports)
///    ├─ segstats : per-(xway,dir,seg) average speed and car count over a
///    │             sliding 300s time window (the LR segment statistics)
///    ├─ accidents: vehicles with >= 4 consecutive zero-speed reports in a
///    │             120s window (the LR accident detection, simplified to
///    │             per-vehicle stopped-report counting)
///    └─ tolls    : reads segstats' OUTPUT basket and prices congested
///                  segments (avg speed < 40) with the LR toll formula
///                  2*(cars-50)^2
struct LrQueries {
  QueryId segstats;
  QueryId accidents;
  QueryId tolls;
  std::shared_ptr<CountingSink> segstats_sink;
  std::shared_ptr<CountingSink> accidents_sink;
  std::shared_ptr<CountingSink> tolls_sink;
};

/// Creates the `lr` stream and installs the query network. The engine
/// should use a simulated clock driven at one tick per simulated second so
/// the time windows line up with generator time.
Result<LrQueries> InstallLrQueries(Engine* engine);

/// Name of the input stream the queries read.
inline constexpr const char* kLrStreamName = "lr";

}  // namespace linearroad
}  // namespace datacell

#endif  // DATACELL_LINEARROAD_QUERIES_H_
