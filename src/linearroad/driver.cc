#include "linearroad/driver.h"

#include <chrono>

#include "common/check.h"

namespace datacell {
namespace linearroad {

LrDriver::LrDriver(Engine* engine, LrConfig config)
    : engine_(engine), generator_(config) {
  DC_CHECK(engine_->simulated_clock() != nullptr);
}

Status LrDriver::Run(int64_t seconds) {
  for (int64_t s = 0; s < seconds; ++s) {
    std::vector<PositionReport> reports = generator_.Tick();
    std::vector<Row> rows;
    rows.reserve(reports.size());
    for (const PositionReport& r : reports) rows.push_back(r.ToRow());

    auto wall_start = std::chrono::steady_clock::now();
    if (!rows.empty()) {
      DC_RETURN_NOT_OK(engine_->IngestBatch(kLrStreamName, rows));
    }
    engine_->Drain();
    auto wall_end = std::chrono::steady_clock::now();
    tick_time_us_.Add(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(wall_end -
                                                              wall_start)
            .count()));
    engine_->simulated_clock()->Advance(kMicrosPerSecond);
  }
  return Status::OK();
}

}  // namespace linearroad
}  // namespace datacell
