#ifndef DATACELL_LINEARROAD_GENERATOR_H_
#define DATACELL_LINEARROAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace datacell {
namespace linearroad {

/// Configuration of the simulated Linear Road traffic (Arasu et al., VLDB'04).
/// The benchmark's input is itself synthetic; this generator reproduces its
/// schema and workload shape — vehicles on L expressways emitting position
/// reports every 30 seconds, with occasional accidents congesting a segment —
/// deterministically from a seed.
struct LrConfig {
  int num_xways = 1;           // the benchmark's scale factor L
  int segments = 100;          // segments per expressway
  int vehicles_per_xway = 1000;
  int report_interval_s = 30;  // seconds between two reports of one vehicle
  double accident_prob = 0.0005;  // per vehicle per tick
  int accident_duration_ticks = 4;
  uint64_t seed = 42;
};

/// One position report: the type-0 tuple of the LR input stream.
/// Field order matches `ReportSchema()`.
struct PositionReport {
  int64_t time_s;  // simulation time
  int64_t vid;
  int64_t speed;   // mph; 0 = stopped
  int64_t xway;
  int64_t lane;    // 0..4
  int64_t dir;     // 0 east, 1 west
  int64_t seg;     // 0..segments-1
  int64_t pos;     // feet from expressway start

  Row ToRow() const;
};

/// Schema of the position-report stream (without the implicit ts column):
/// time, vid, speed, xway, lane, dir, seg, pos — all int64.
Schema ReportSchema();

/// Deterministic traffic simulator. Call `Tick()` once per simulated second;
/// it returns the position reports due that second (each vehicle reports
/// every `report_interval_s` seconds, staggered by vehicle id).
class LrGenerator {
 public:
  explicit LrGenerator(LrConfig config);

  /// Advances the simulation by one second and returns the reports emitted.
  std::vector<PositionReport> Tick();

  int64_t now_s() const { return now_s_; }
  int64_t total_reports() const { return total_reports_; }
  /// Number of accidents started so far.
  int64_t accidents_started() const { return accidents_started_; }

 private:
  struct Vehicle {
    int64_t vid;
    int xway;
    int dir;
    double pos_ft;     // absolute position along the expressway
    int speed_mph;     // current speed
    int stopped_ticks_left = 0;  // >0: part of an accident, speed 0
  };

  static constexpr double kFeetPerSegment = 5280.0;

  void MoveVehicle(Vehicle* v);

  LrConfig config_;
  Rng rng_;
  std::vector<Vehicle> vehicles_;
  int64_t now_s_ = 0;
  int64_t total_reports_ = 0;
  int64_t accidents_started_ = 0;
};

}  // namespace linearroad
}  // namespace datacell

#endif  // DATACELL_LINEARROAD_GENERATOR_H_
