#ifndef DATACELL_COMMON_RESULT_H_
#define DATACELL_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace datacell {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit by design, mirroring arrow::Result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Constructing from an OK status is a
  /// programming error and aborts.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) std::abort();
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the contained value; aborts if `!ok()`.
  const T& ValueOrDie() const& {
    if (!ok()) std::abort();
    return *value_;
  }
  T& ValueOrDie() & {
    if (!ok()) std::abort();
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!ok()) std::abort();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or `alternative` when this holds an error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  Status status_;  // OK iff value_ present
  std::optional<T> value_;
};

}  // namespace datacell

#endif  // DATACELL_COMMON_RESULT_H_
