#ifndef DATACELL_COMMON_CHECK_H_
#define DATACELL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checks that abort with a diagnostic on violation. Enabled in all
/// build types: a database kernel that silently corrupts state is worse than
/// one that stops.
#define DC_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define DC_CHECK_OK(expr)                                                  \
  do {                                                                     \
    ::datacell::Status _dc_st = (expr);                                    \
    if (!_dc_st.ok()) {                                                    \
      std::fprintf(stderr, "DC_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, _dc_st.ToString().c_str());                   \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define DC_CHECK_EQ(a, b) DC_CHECK((a) == (b))
#define DC_CHECK_NE(a, b) DC_CHECK((a) != (b))
#define DC_CHECK_LT(a, b) DC_CHECK((a) < (b))
#define DC_CHECK_LE(a, b) DC_CHECK((a) <= (b))
#define DC_CHECK_GT(a, b) DC_CHECK((a) > (b))
#define DC_CHECK_GE(a, b) DC_CHECK((a) >= (b))

/// Debug-tier invariant checks (DC_DCHECK): the machine-checked Petri-net
/// invariants — basket flow conservation, shared-basket watermark bounds,
/// factory exactly-once firing — plus the lock-order discipline
/// (common/lock_order.h). Compiled in only when the build is configured with
/// -DDATACELL_DEBUG_CHECKS=ON (the default for Debug builds); release builds
/// expand them to nothing so the pipeline hot path carries zero overhead.
///
/// DATACELL_DEBUG_CHECKS_ENABLED is always defined (0 or 1) by CMake on every
/// target linking datacell_common, so `#if` (not `#ifdef`) is the correct
/// guard in code that adds debug-only members or test hooks.
#ifndef DATACELL_DEBUG_CHECKS_ENABLED
#define DATACELL_DEBUG_CHECKS_ENABLED 0
#endif

#if DATACELL_DEBUG_CHECKS_ENABLED
#define DC_DCHECK(cond) DC_CHECK(cond)
#else
/// Compiles to nothing, but keeps `cond` syntactically checked and marks the
/// expansion with sizeof so operands need not be evaluable at runtime.
#define DC_DCHECK(cond) \
  do {                  \
    (void)sizeof(cond); \
  } while (0)
#endif

#define DC_DCHECK_EQ(a, b) DC_DCHECK((a) == (b))
#define DC_DCHECK_NE(a, b) DC_DCHECK((a) != (b))
#define DC_DCHECK_LT(a, b) DC_DCHECK((a) < (b))
#define DC_DCHECK_LE(a, b) DC_DCHECK((a) <= (b))
#define DC_DCHECK_GT(a, b) DC_DCHECK((a) > (b))
#define DC_DCHECK_GE(a, b) DC_DCHECK((a) >= (b))

#endif  // DATACELL_COMMON_CHECK_H_
