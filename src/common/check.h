#ifndef DATACELL_COMMON_CHECK_H_
#define DATACELL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant checks that abort with a diagnostic on violation. Enabled in all
/// build types: a database kernel that silently corrupts state is worse than
/// one that stops.
#define DC_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DC_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define DC_CHECK_OK(expr)                                                  \
  do {                                                                     \
    ::datacell::Status _dc_st = (expr);                                    \
    if (!_dc_st.ok()) {                                                    \
      std::fprintf(stderr, "DC_CHECK_OK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, _dc_st.ToString().c_str());                   \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define DC_CHECK_EQ(a, b) DC_CHECK((a) == (b))
#define DC_CHECK_NE(a, b) DC_CHECK((a) != (b))
#define DC_CHECK_LT(a, b) DC_CHECK((a) < (b))
#define DC_CHECK_LE(a, b) DC_CHECK((a) <= (b))
#define DC_CHECK_GT(a, b) DC_CHECK((a) > (b))
#define DC_CHECK_GE(a, b) DC_CHECK((a) >= (b))

#endif  // DATACELL_COMMON_CHECK_H_
