#ifndef DATACELL_COMMON_HASH_H_
#define DATACELL_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

#include "storage/types.h"

namespace datacell {

/// The engine-wide row-hash: FNV-1a over the value's byte representation.
///
/// This is THE shard placement function — the shard router (core/shard.h)
/// splits ingest batches with it and the split-merge oracle
/// (analysis/partition_analyzer.cc) verifies partition recipes against it,
/// so the two agree byte for byte: a verdict the oracle certified describes
/// exactly the split the router performs at runtime. Do not change one side
/// without the other; the hash_test suite locks the concrete values.
///
/// Conventions shared by both sides:
///   - nulls hash to 0 (null-key rows co-locate on shard 0),
///   - -0.0 folds onto +0.0 before mixing (they compare equal in SQL, so
///     they must land on the same shard),
///   - int64 and timestamp values mix identically (timestamps are
///     integer-backed and compare as integers),
///   - strings mix their bytes, without the length (single-value hashes
///     never concatenate, so no framing is needed).
///
/// Header-only on purpose: datacell_common stays free of a link dependency
/// on storage; only the Value overload touches storage/types.h types.

inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Folds `n` bytes at `p` into `h` (FNV-1a step).
inline uint64_t FnvMixBytes(uint64_t h, const void* p, size_t n) {
  const unsigned char* b = static_cast<const unsigned char*>(p);
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ b[i]) * kFnvPrime;
  }
  return h;
}

inline uint64_t HashBool(bool v) {
  unsigned char b = v ? 1 : 0;
  return FnvMixBytes(kFnvOffsetBasis, &b, 1);
}

inline uint64_t HashInt64(int64_t v) {
  return FnvMixBytes(kFnvOffsetBasis, &v, sizeof(v));
}

inline uint64_t HashDouble(double v) {
  if (v == 0.0) v = 0.0;  // fold -0.0 onto +0.0: they compare equal
  return FnvMixBytes(kFnvOffsetBasis, &v, sizeof(v));
}

inline uint64_t HashString(std::string_view v) {
  return FnvMixBytes(kFnvOffsetBasis, v.data(), v.size());
}

/// Row-hash of one peripheral value; the boxed entry point the oracle uses
/// (the router goes through the typed helpers above on raw BAT columns —
/// same bytes, same result).
inline uint64_t HashValue(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_bool()) return HashBool(v.bool_value());
  if (v.is_int64() || v.is_timestamp()) return HashInt64(v.int64_value());
  if (v.is_double()) return HashDouble(v.double_value());
  if (v.is_string()) return HashString(v.string_value());
  return kFnvOffsetBasis;  // value kinds are exhaustive; defensive only
}

}  // namespace datacell

#endif  // DATACELL_COMMON_HASH_H_
