#ifndef DATACELL_COMMON_STATUS_H_
#define DATACELL_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace datacell {

/// Machine-readable classification of an error. `kOk` is the success value.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kFailedPrecondition,
  kParseError,
  kTypeError,
  kIoError,
  kCancelled,
};

/// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
///
/// The library does not use exceptions; every fallible public API returns a
/// `Status` or a `Result<T>`. The OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnimplemented() const { return code() == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code();
  }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Shared so Status is cheap to copy; immutable after construction.
  std::shared_ptr<const State> state_;
};

}  // namespace datacell

/// Propagates a non-OK Status to the caller.
#define DC_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::datacell::Status _st = (expr);           \
    if (!_st.ok()) return _st;                 \
  } while (0)

// Internal helpers for DC_ASSIGN_OR_RETURN.
#define DC_CONCAT_IMPL_(x, y) x##y
#define DC_CONCAT_(x, y) DC_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T>), returns its status on error, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define DC_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto DC_CONCAT_(_dc_result_, __LINE__) = (rexpr);            \
  if (!DC_CONCAT_(_dc_result_, __LINE__).ok())                 \
    return DC_CONCAT_(_dc_result_, __LINE__).status();         \
  lhs = std::move(DC_CONCAT_(_dc_result_, __LINE__)).ValueOrDie()

#endif  // DATACELL_COMMON_STATUS_H_
