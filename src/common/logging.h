#ifndef DATACELL_COMMON_LOGGING_H_
#define DATACELL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace datacell {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits on destruction. Not for hot paths.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace datacell

#define DC_LOG(level)                                            \
  ::datacell::internal_logging::LogMessage(                      \
      ::datacell::LogLevel::k##level, __FILE__, __LINE__)

#endif  // DATACELL_COMMON_LOGGING_H_
