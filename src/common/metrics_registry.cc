#include "common/metrics_registry.h"

#include "common/lock_order.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace datacell {

size_t Histogram::BucketFor(int64_t v) {
  if (v <= 0) return 0;
  size_t b = static_cast<size_t>(std::bit_width(static_cast<uint64_t>(v)));
  return std::min(b, kNumBuckets - 1);
}

int64_t Histogram::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 63) return std::numeric_limits<int64_t>::max();
  return (int64_t{1} << b) - 1;
}

int64_t Histogram::BucketLowerBound(size_t b) {
  if (b == 0) return 0;
  return int64_t{1} << (b - 1);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.buckets.resize(kNumBuckets);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

double HistogramSnapshot::Percentile(double q) const {
  // The per-bucket cells and `count` are read independently, so under
  // concurrent observation their totals can disagree transiently; rank
  // against the buckets' own total for internal consistency.
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank target, 1-based.
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total));
  if (target == 0) target = 1;
  if (target > total) target = total;
  uint64_t cum = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (cum + buckets[b] >= target) {
      double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      double hi = static_cast<double>(Histogram::BucketUpperBound(b));
      double frac = static_cast<double>(target - cum) /
                    static_cast<double>(buckets[b]);
      double est = lo + frac * (hi - lo);
      // The true maximum is tracked exactly; never report past it.
      if (max > 0) est = std::min(est, static_cast<double>(max));
      return est;
    }
    cum += buckets[b];
  }
  return static_cast<double>(max);
}

namespace {

template <typename S>
const S* FindEntry(const std::vector<S>& entries, const std::string& name,
                   const std::string& label_value) {
  for (const S& e : entries) {
    if (e.name != name) continue;
    if (label_value.empty()) return &e;
    for (const auto& [k, v] : e.labels) {
      if (v == label_value) return &e;
    }
  }
  return nullptr;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Renders labels with an optional extra (le=...) pair appended — the
/// histogram bucket series need it.
std::string RenderLabels(const MetricLabels& labels, const std::string& extra_key,
                         const std::string& extra_value) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k + "=\"" + EscapeLabelValue(v) + "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += extra_key + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

void AppendTypeHeader(std::string& out, std::string& last_typed,
                      const std::string& name, const char* type) {
  if (name == last_typed) return;
  out += "# TYPE " + name + " " + type + "\n";
  last_typed = name;
}

}  // namespace

const CounterSnapshot* MetricsSnapshotData::FindCounter(
    const std::string& name, const std::string& label_value) const {
  return FindEntry(counters, name, label_value);
}

const GaugeSnapshot* MetricsSnapshotData::FindGauge(
    const std::string& name, const std::string& label_value) const {
  return FindEntry(gauges, name, label_value);
}

const HistogramSnapshot* MetricsSnapshotData::FindHistogram(
    const std::string& name, const std::string& label_value) const {
  return FindEntry(histograms, name, label_value);
}

std::string RenderMetricName(const std::string& name,
                             const MetricLabels& labels) {
  return name + RenderLabels(labels, "", "");
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "metrics_registry", "metrics_registry");
  auto& slot = counters_[Key{name, std::move(labels)}];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "metrics_registry", "metrics_registry");
  auto& slot = gauges_[Key{name, std::move(labels)}];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "metrics_registry", "metrics_registry");
  auto& slot = histograms_[Key{name, std::move(labels)}];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "metrics_registry", "metrics_registry");
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshotData MetricsRegistry::Snapshot() const {
  MetricsSnapshotData out;
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "metrics_registry", "metrics_registry");
  out.counters.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    out.counters.push_back(CounterSnapshot{key.first, key.second, c->value()});
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    out.gauges.push_back(GaugeSnapshot{key.first, key.second, g->value()});
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [key, h] : histograms_) {
    HistogramSnapshot s = h->Snapshot();
    s.name = key.first;
    s.labels = key.second;
    out.histograms.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::PrometheusText(const std::string& prefix) const {
  MetricsSnapshotData snap = Snapshot();
  // Name-prefix filter (empty matches everything): the shell's
  // `\metrics datacell_basket` view. Filtering whole series keeps the
  // remaining exposition byte-identical to the unfiltered one.
  auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.compare(0, prefix.size(), prefix) == 0;
  };
  std::string out;
  std::string last_typed;
  // Map iteration is (name, labels)-ordered, so same-name series are
  // adjacent and get one # TYPE header.
  for (const CounterSnapshot& c : snap.counters) {
    if (!matches(c.name)) continue;
    AppendTypeHeader(out, last_typed, c.name, "counter");
    out += c.name + RenderLabels(c.labels, "", "") + " " +
           std::to_string(c.value) + "\n";
  }
  last_typed.clear();
  for (const GaugeSnapshot& g : snap.gauges) {
    if (!matches(g.name)) continue;
    AppendTypeHeader(out, last_typed, g.name, "gauge");
    out += g.name + RenderLabels(g.labels, "", "") + " " +
           std::to_string(g.value) + "\n";
  }
  last_typed.clear();
  for (const HistogramSnapshot& h : snap.histograms) {
    if (!matches(h.name)) continue;
    AppendTypeHeader(out, last_typed, h.name, "histogram");
    uint64_t cum = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cum += h.buckets[b];
      // Empty tail buckets add nothing; emit the populated prefix plus +Inf.
      if (h.buckets[b] == 0 && b > 0) continue;
      out += h.name + "_bucket" +
             RenderLabels(h.labels, "le",
                          std::to_string(Histogram::BucketUpperBound(b))) +
             " " + std::to_string(cum) + "\n";
    }
    // +Inf and _count repeat the buckets' own total (not the separate count
    // cell) so the exposition is internally consistent even when observers
    // raced the snapshot.
    out += h.name + "_bucket" + RenderLabels(h.labels, "le", "+Inf") + " " +
           std::to_string(cum) + "\n";
    out += h.name + "_sum" + RenderLabels(h.labels, "", "") + " " +
           std::to_string(h.sum) + "\n";
    out += h.name + "_count" + RenderLabels(h.labels, "", "") + " " +
           std::to_string(cum) + "\n";
  }
  return out;
}

}  // namespace datacell
