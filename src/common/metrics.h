#ifndef DATACELL_COMMON_METRICS_H_
#define DATACELL_COMMON_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace datacell {

/// Collects latency/size samples and reports order statistics. Used by the
/// benchmark harness to report the distributions the paper's claims concern
/// (per-tuple response time, basket occupancy, factory run time).
class SampleStats {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// q in [0,1]; nearest-rank on the sorted samples. Returns 0 when empty.
  double Percentile(double q) const;
  double StdDev() const;

  /// "n=.., mean=.., p50=.., p99=.., max=.." one-liner.
  std::string Summary() const;

 private:
  // Sorted lazily by Percentile; kept simple because reporting is offline.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// Monotone counters grouped by name, for engine introspection.
struct EngineCounters {
  int64_t tuples_received = 0;
  int64_t tuples_emitted = 0;
  int64_t factory_runs = 0;
  int64_t factory_idle_checks = 0;
  int64_t tuples_processed = 0;
  int64_t scheduler_iterations = 0;
};

}  // namespace datacell

#endif  // DATACELL_COMMON_METRICS_H_
