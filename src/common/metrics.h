#ifndef DATACELL_COMMON_METRICS_H_
#define DATACELL_COMMON_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace datacell {

/// Collects latency/size samples and reports order statistics. Used by the
/// benchmark harness to report the distributions the paper's claims concern
/// (per-tuple response time, basket occupancy, factory run time).
class SampleStats {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Sum() const;
  double Mean() const;
  double Min() const;
  double Max() const;
  /// q in [0,1]; nearest-rank on the sorted samples. Returns 0 when empty.
  double Percentile(double q) const;
  double StdDev() const;

  /// "n=.., mean=.., p50=.., p99=.., max=.." one-liner.
  std::string Summary() const;

 private:
  // Sorted lazily by Percentile; kept simple because reporting is offline.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

// Live engine counters moved to common/metrics_registry.h: the old plain-
// int64_t EngineCounters struct was racy under scheduler worker threads and
// is replaced by the atomic Counter/Gauge/Histogram cells there.

}  // namespace datacell

#endif  // DATACELL_COMMON_METRICS_H_
