#include "common/thread_pool.h"

#include "common/check.h"
#include "common/lock_order.h"

namespace datacell {

ThreadPool::ThreadPool(size_t num_threads) {
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    DC_LOCK_ORDER(&idle_mu_, "pool_idle", "shutdown");
    stop_.store(true, std::memory_order_release);
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  DC_CHECK(task != nullptr);
  if (workers_.empty()) {
    // Degenerate pool: run inline.
    task();
    executed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  size_t q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  {
    std::lock_guard<std::mutex> lock(queues_[q]->mu);
    DC_LOCK_ORDER(&queues_[q]->mu, "pool_queue", "submit");
    queues_[q]->tasks.push_back(std::move(task));
  }
  // pending_ is bumped under idle_mu_ so a worker cannot check it and block
  // between our increment and our notify (the classic lost-wakeup window).
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    DC_LOCK_ORDER(&idle_mu_, "pool_idle", "submit");
    pending_.fetch_add(1, std::memory_order_release);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::PopLocal(size_t id, std::function<void()>* task) {
  Queue& q = *queues_[id];
  std::lock_guard<std::mutex> lock(q.mu);
  DC_LOCK_ORDER(&q.mu, "pool_queue", "pop_local");
  if (q.tasks.empty()) return false;
  *task = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::Steal(size_t thief, std::function<void()>* task) {
  size_t n = queues_.size();
  for (size_t d = 1; d < n; ++d) {
    Queue& q = *queues_[(thief + d) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    DC_LOCK_ORDER(&q.mu, "pool_queue", "steal");
    if (q.tasks.empty()) continue;
    *task = std::move(q.tasks.front());
    q.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t id) {
  std::function<void()> task;
  while (true) {
    if (PopLocal(id, &task) || Steal(id, &task)) {
      task();
      task = nullptr;
      pending_.fetch_sub(1, std::memory_order_release);
      executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(idle_mu_);
    DC_LOCK_ORDER(&idle_mu_, "pool_idle", "worker_wait");
    idle_cv_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) > 0 ||
             stop_.load(std::memory_order_acquire);
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared morsel dispatcher: every participant claims the next unclaimed
  // index until the range is exhausted. The caller blocks until helpers that
  // actually started have finished, so capturing `state` by shared_ptr keeps
  // it alive even for helpers scheduled after the loop already drained.
  struct ForState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t n;
    const std::function<void(size_t)>* fn;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<ForState>();
  state->n = n;
  state->fn = &fn;
  auto run = [](ForState& s) {
    size_t i;
    while ((i = s.next.fetch_add(1, std::memory_order_relaxed)) < s.n) {
      (*s.fn)(i);
      if (s.done.fetch_add(1, std::memory_order_acq_rel) + 1 == s.n) {
        std::lock_guard<std::mutex> lock(s.mu);
        DC_LOCK_ORDER(&s.mu, "pool_for", "parallel_for");
        s.cv.notify_all();
      }
    }
  };
  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([state, run] { run(*state); });
  }
  run(*state);
  std::unique_lock<std::mutex> lock(state->mu);
  DC_LOCK_ORDER(&state->mu, "pool_for", "parallel_for");
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  // `fn` lives on the caller's stack: helpers still inside run() at this
  // point have already observed next >= n and touch only their own locals.
}

}  // namespace datacell
