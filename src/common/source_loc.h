#ifndef DATACELL_COMMON_SOURCE_LOC_H_
#define DATACELL_COMMON_SOURCE_LOC_H_

#include <cstdint>
#include <string>

namespace datacell {

/// A 1-based line:column position in the SQL text a construct came from.
/// line == 0 means "unknown" (e.g. plans built through the C++ API). Flows
/// from lexer tokens through the AST and binder into analyzer diagnostics.
struct SourceLoc {
  uint32_t line = 0;
  uint32_t col = 0;

  bool valid() const { return line != 0; }
  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

}  // namespace datacell

#endif  // DATACELL_COMMON_SOURCE_LOC_H_
