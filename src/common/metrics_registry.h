#ifndef DATACELL_COMMON_METRICS_REGISTRY_H_
#define DATACELL_COMMON_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace datacell {

/// Live, machine-readable engine metrics. Unlike the offline SampleStats
/// (metrics.h), every cell here is updated lock-free from the hot paths —
/// scheduler workers, receptors and application ingest threads — and read
/// without stopping the world. Names follow the Prometheus convention
/// (`datacell_<subsystem>_<metric>[_total|_us]` plus key="value" labels), so
/// MetricsRegistry::PrometheusText() is a valid text exposition.

/// Label set attached to a metric instance, e.g. {{"query", "hot"}}.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing atomic counter.
class Counter {
 public:
  void Inc(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the value. Only for mirroring an external monotone source
  /// (e.g. a transition's internal run count) into the registry at snapshot
  /// time; instrumentation code must use Inc.
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// The underlying cell, for layers that must not depend on this header's
  /// types (e.g. the kernel ExecContext counts morsels through a raw
  /// atomic pointer).
  std::atomic<int64_t>& cell() { return value_; }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time value that can move both ways (basket occupancy, bytes).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water marks).
  void UpdateMax(int64_t v) {
    int64_t prev = value_.load(std::memory_order_relaxed);
    while (v > prev &&
           !value_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Read-only copy of one histogram, with derived order statistics.
struct HistogramSnapshot {
  std::string name;
  MetricLabels labels;
  /// buckets[b] counts observations v with BucketFor(v) == b (not
  /// cumulative). Bucket 0 holds v <= 0; bucket b >= 1 holds
  /// v in [2^(b-1), 2^b - 1].
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;

  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// q in [0,1]. Estimated by linear interpolation inside the covering log2
  /// bucket, clamped to the observed max — so the error is bounded by the
  /// bucket width (a factor of 2).
  double Percentile(double q) const;
};

/// Fixed-bucket log2 latency/size histogram. Observe() is wait-free (a few
/// relaxed atomic adds plus a CAS loop for the max), so it is safe — and
/// cheap — on per-tuple paths. 64 buckets cover the whole non-negative
/// int64 range; there is nothing to configure and no allocation after
/// construction.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Observe(int64_t v) {
    buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Bucket index for value `v`: 0 for v <= 0, else floor(log2(v)) + 1,
  /// clamped to the last bucket.
  static size_t BucketFor(int64_t v);
  /// Largest value bucket `b` admits (inclusive): 0 for b == 0, else
  /// 2^b - 1 (saturating at int64 max).
  static int64_t BucketUpperBound(size_t b);
  /// Smallest value bucket `b` admits: 0 for b == 0, else 2^(b-1).
  static int64_t BucketLowerBound(size_t b);

  /// Consistent-enough copy: each cell is read atomically; cells observed
  /// mid-update may differ by in-flight observations, but every completed
  /// Observe is included and count >= sum of any earlier snapshot.
  HistogramSnapshot Snapshot() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

struct CounterSnapshot {
  std::string name;
  MetricLabels labels;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  MetricLabels labels;
  int64_t value = 0;
};

/// Typed point-in-time copy of a whole registry.
struct MetricsSnapshotData {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// First entry matching `name` (and `label_value` as the value of any
  /// label, when non-empty). nullptr when absent.
  const CounterSnapshot* FindCounter(const std::string& name,
                                     const std::string& label_value = "") const;
  const GaugeSnapshot* FindGauge(const std::string& name,
                                 const std::string& label_value = "") const;
  const HistogramSnapshot* FindHistogram(
      const std::string& name, const std::string& label_value = "") const;
};

/// Owns every metric instance. Get* registers on first use and returns a
/// stable pointer: registration takes a mutex (cold — instances are created
/// at wiring time), updates through the returned pointer are lock-free.
/// One registry per engine; tests may create their own.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {});
  Histogram* GetHistogram(const std::string& name, MetricLabels labels = {});

  MetricsSnapshotData Snapshot() const;
  /// Prometheus text exposition (version 0.0.4): `# TYPE` comments, one
  /// sample line per metric, histograms as cumulative `_bucket{le=...}`
  /// series plus `_sum`/`_count`. A non-empty `prefix` restricts the output
  /// to metric names starting with it (the shell's `\metrics <prefix>`).
  std::string PrometheusText(const std::string& prefix = "") const;

  size_t num_metrics() const;

 private:
  using Key = std::pair<std::string, MetricLabels>;

  mutable std::mutex mu_;  // guards map shape only, never cell updates
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

/// Renders `name{k1="v1",k2="v2"}` (no braces when unlabelled), escaping
/// backslashes, quotes and newlines in values per the exposition format.
std::string RenderMetricName(const std::string& name,
                             const MetricLabels& labels);

}  // namespace datacell

#endif  // DATACELL_COMMON_METRICS_REGISTRY_H_
