#ifndef DATACELL_COMMON_LOCK_ORDER_H_
#define DATACELL_COMMON_LOCK_ORDER_H_

#include <cstddef>
#include <string>

#include "common/check.h"

/// Debug-build lock-order checker: a dynamic detector for *potential*
/// deadlocks. Every annotated mutex belongs to a named lock class ("basket",
/// "scheduler_wake", "pool_queue", ...). Each thread keeps a stack of the
/// annotated locks it currently holds; acquiring lock class B while holding
/// class A records the directed edge A -> B in a global acquisition-order
/// graph. The first acquisition that would close a cycle in that graph — or
/// that nests two locks of the same class, which the engine's lock hierarchy
/// forbids outright (e.g. two baskets are never held at once; see
/// Basket::DrainSplit) — aborts the process, printing BOTH witnesses: the
/// held-lock stack of the offending thread and the recorded stack that
/// established each conflicting edge. A potential deadlock is thus caught on
/// the first inverted acquisition, even if the interleaving that would
/// actually deadlock never occurs in the run.
///
/// The canonical acquisition order (documented in docs/ARCHITECTURE.md):
///
///   scheduler_transitions < channel < basket < { trace_ring,
///     metrics_registry, batch_pool }
///     (Scheduler::Step holds the transition table while polling
///     Backlog()/Ready(), which lock channels and baskets. batch_pool is a
///     leaf: baskets acquire buffers from the recycling pool under their
///     monitor, and the pool never calls back out.)
///   wake_hub < scheduler_wake (Engine::WakeHub::Notify forwards to
///     Scheduler::NotifyWork under the hub lock)
///   scheduler_wake, scheduler_error: leaf locks
///   pool_queue, pool_idle, pool_for: leaf locks of the kernel thread pool
///
/// Wake callbacks (Basket/Channel -> Scheduler::NotifyWork) are invoked
/// *outside* the producer's lock precisely so no basket/channel -> scheduler
/// edge exists; the checker verifies that discipline on every run.
///
/// Everything here compiles away under -DDATACELL_DEBUG_CHECKS=OFF: the
/// DC_LOCK_ORDER macro expands to nothing, no thread-local state exists and
/// release binaries carry zero tracking overhead.

#if DATACELL_DEBUG_CHECKS_ENABLED

namespace datacell {
namespace lockorder {

/// Registers acquisition of `lock` (class `cls`, instance label `instance`)
/// by the calling thread. Aborts on a same-class nesting or on an edge that
/// closes a cycle in the global order graph.
void NoteAcquire(const void* lock, const char* cls, const std::string& instance);
/// Pops `lock` from the calling thread's held stack (out-of-order release is
/// allowed, matching std::unique_lock semantics).
void NoteRelease(const void* lock);

/// Number of distinct order edges recorded so far (introspection/tests).
size_t EdgeCount();
/// Clears the global graph and forgets recorded witnesses. Test-only: the
/// caller must guarantee no annotated lock is held by any thread.
void ResetForTest();

}  // namespace lockorder

/// RAII annotation: declare immediately after acquiring the lock, in the same
/// scope, so the note's lifetime brackets the critical section.
class LockOrderScope {
 public:
  LockOrderScope(const void* lock, const char* cls, const std::string& instance)
      : lock_(lock) {
    lockorder::NoteAcquire(lock, cls, instance);
  }
  ~LockOrderScope() { lockorder::NoteRelease(lock_); }

  LockOrderScope(const LockOrderScope&) = delete;
  LockOrderScope& operator=(const LockOrderScope&) = delete;

 private:
  const void* lock_;
};

}  // namespace datacell

#define DC_LOCK_ORDER_CAT2(a, b) a##b
#define DC_LOCK_ORDER_CAT(a, b) DC_LOCK_ORDER_CAT2(a, b)
/// Annotates the enclosing scope as holding `lock_ptr` (class `cls`, instance
/// label `inst`). Place directly after the lock acquisition.
#define DC_LOCK_ORDER(lock_ptr, cls, inst)                            \
  ::datacell::LockOrderScope DC_LOCK_ORDER_CAT(_dc_lock_order_,       \
                                               __LINE__)((lock_ptr), \
                                                         (cls), (inst))

#else  // !DATACELL_DEBUG_CHECKS_ENABLED

#define DC_LOCK_ORDER(lock_ptr, cls, inst) \
  do {                                     \
  } while (0)

#endif  // DATACELL_DEBUG_CHECKS_ENABLED

#endif  // DATACELL_COMMON_LOCK_ORDER_H_
