#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace datacell {

int64_t Rng::Zipf(int64_t n, double theta) {
  DC_CHECK_GT(n, 0);
  if (theta <= 0.0) return Uniform(0, n - 1);
  // Inverse-CDF approximation of a Zipf(rank^-theta) distribution; accurate
  // enough for workload skew and O(1) per draw.
  double u = UniformReal(0.0, 1.0);
  double exponent = 1.0 - theta;
  double v = std::pow(static_cast<double>(n), exponent);
  double x = std::pow(u * (v - 1.0) + 1.0, 1.0 / exponent);
  int64_t r = static_cast<int64_t>(x) - 1;
  if (r < 0) r = 0;
  if (r >= n) r = n - 1;
  return r;
}

}  // namespace datacell
