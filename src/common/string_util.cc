#include "common/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace datacell {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty integer literal");
  int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::ParseError("invalid integer literal: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = Trim(s);
  if (s.empty()) return Status::ParseError("empty float literal");
  // std::from_chars for double is not available in all libstdc++ configs we
  // target; strtod on a NUL-terminated copy is fine off the hot path.
  std::string buf(s);
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::ParseError("invalid float literal: '" + buf + "'");
  }
  return value;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace datacell
