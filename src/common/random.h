#ifndef DATACELL_COMMON_RANDOM_H_
#define DATACELL_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace datacell {

/// Deterministic RNG wrapper: every workload generator takes an explicit
/// seed so experiments and tests are exactly reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Bernoulli trial with probability `p` of true.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Zipf-like skewed value in [0, n): rank-based approximation with
  /// exponent `theta` in (0, 1]. theta=0 degenerates to uniform.
  int64_t Zipf(int64_t n, double theta);

  /// Exponentially distributed inter-arrival gap with the given mean.
  double Exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(engine_);
  }

  /// Normal distribution.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace datacell

#endif  // DATACELL_COMMON_RANDOM_H_
