#include "common/status.h"

namespace datacell {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace datacell
