#ifndef DATACELL_COMMON_TRACE_H_
#define DATACELL_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"

namespace datacell {

/// Bounded event-trace buffer for timeline inspection of the Petri-net
/// pipeline: scheduler sweeps, transition firings and basket lock waits are
/// recorded as timestamped events and exported as Chrome `trace_event` JSON
/// (load the file in chrome://tracing or https://ui.perfetto.dev).
///
/// The ring overwrites its oldest events when full, so a long-running engine
/// keeps the most recent window of activity at a fixed memory cost. Record
/// takes a plain mutex: tracing is an opt-in diagnostic (engines run with it
/// off by default), so the hot paths only pay a null-pointer check — or
/// nothing at all when compiled out with -DDATACELL_TRACE=OFF.

/// One trace event. Names are copied into a fixed inline buffer (no
/// allocation while recording); categories and argument names must be
/// string literals (static storage).
struct TraceEvent {
  static constexpr size_t kNameCapacity = 48;

  char name[kNameCapacity];
  const char* category = "";
  /// Chrome trace phase: 'X' = complete (has dur), 'i' = instant.
  char phase = 'X';
  Timestamp ts_us = 0;
  Timestamp dur_us = 0;
  uint32_t tid = 0;
  /// Optional single argument, shown in the trace viewer's detail pane.
  const char* arg_name = nullptr;
  int64_t arg = 0;
};

class TraceRing {
 public:
  /// `capacity` is the maximum number of retained events (>= 1).
  explicit TraceRing(size_t capacity);

  /// Runtime recording toggle (the shell's `\trace on|off`). The ring and
  /// its content survive a disable — Record* calls just return before taking
  /// the mutex — so tracing can be flipped on around an incident window
  /// without reallocating or losing what was already captured. Compile-out
  /// builds (-DDATACELL_TRACE=OFF) remain the zero-cost option.
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// A span with a duration ('X'): a transition firing, a basket lock wait.
  void RecordComplete(const char* category, std::string_view name,
                      Timestamp start_us, Timestamp dur_us,
                      const char* arg_name = nullptr, int64_t arg = 0);
  /// A point event ('i'): a scheduler wakeup, an error.
  void RecordInstant(const char* category, std::string_view name,
                     Timestamp ts_us, const char* arg_name = nullptr,
                     int64_t arg = 0);

  size_t capacity() const { return ring_.size(); }
  /// Events currently retained (<= capacity).
  size_t size() const;
  /// Events ever recorded.
  uint64_t total_recorded() const;
  /// Events overwritten by wraparound: total_recorded() - size().
  uint64_t dropped() const;
  void Clear();

  /// Retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace_event JSON object: {"traceEvents":[...]}. Timestamps are
  /// microseconds, as the format expects.
  std::string ToChromeJson() const;

 private:
  void Push(const TraceEvent& e);

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t head_ = 0;     // next write position
  size_t count_ = 0;    // retained events
  uint64_t total_ = 0;  // lifetime events
};

/// True when the DC_TRACE_* instrumentation below is compiled in.
#ifndef DATACELL_TRACE_ENABLED
#define DATACELL_TRACE_ENABLED 1
#endif
inline constexpr bool kTraceCompiled = DATACELL_TRACE_ENABLED != 0;

// Hot-path hooks. `ring` is a TraceRing* that may be null (tracing disabled
// at runtime); with -DDATACELL_TRACE=OFF the macros expand to nothing and
// even the null check disappears from the pipeline.
#if DATACELL_TRACE_ENABLED
#define DC_TRACE_COMPLETE(ring, category, name, start_us, dur_us, arg_name, \
                          arg)                                              \
  do {                                                                      \
    ::datacell::TraceRing* dc_trace_ring_ = (ring);                         \
    if (dc_trace_ring_ != nullptr) {                                        \
      dc_trace_ring_->RecordComplete((category), (name), (start_us),        \
                                     (dur_us), (arg_name), (arg));          \
    }                                                                       \
  } while (0)
#define DC_TRACE_INSTANT(ring, category, name, ts_us, arg_name, arg) \
  do {                                                               \
    ::datacell::TraceRing* dc_trace_ring_ = (ring);                  \
    if (dc_trace_ring_ != nullptr) {                                 \
      dc_trace_ring_->RecordInstant((category), (name), (ts_us),     \
                                    (arg_name), (arg));              \
    }                                                                \
  } while (0)
#else
#define DC_TRACE_COMPLETE(ring, category, name, start_us, dur_us, arg_name, \
                          arg)                                              \
  ((void)0)
#define DC_TRACE_INSTANT(ring, category, name, ts_us, arg_name, arg) ((void)0)
#endif

}  // namespace datacell

#endif  // DATACELL_COMMON_TRACE_H_
