#include "common/clock.h"

#include <chrono>

#include "common/check.h"

namespace datacell {

Timestamp WallClock::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SimulatedClock::SetTime(Timestamp t) {
  DC_CHECK_GE(t, now_.load(std::memory_order_acquire));
  now_.store(t, std::memory_order_release);
}

}  // namespace datacell
