#ifndef DATACELL_COMMON_STRING_UTIL_H_
#define DATACELL_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace datacell {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict integer / floating point parsers: the whole string must parse.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace datacell

#endif  // DATACELL_COMMON_STRING_UTIL_H_
