#ifndef DATACELL_COMMON_THREAD_POOL_H_
#define DATACELL_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace datacell {

/// Work-stealing thread pool for intra-operator (morsel-driven) parallelism.
///
/// Each worker owns a deque: it pushes and pops at the back (LIFO keeps the
/// working set cache-hot) and idle workers steal from the front of a victim's
/// deque (FIFO steals take the oldest — largest-granularity — task).
/// External submissions are distributed round-robin across the worker deques.
///
/// The pool is shared engine-wide: kernels fan morsels over it via
/// `ParallelFor`, where the *calling* thread participates in the loop, so a
/// pool of N threads yields N+1-way parallelism and a pool is never deadlocked
/// by a worker waiting on its own pool.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 is allowed: every ParallelFor then runs
  /// entirely on the calling thread (handy for tests and the scalar path).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues one fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Runs `fn(i)` for every i in [0, n). Chunks are claimed dynamically from
  /// a shared counter (the morsel dispatcher: a fast worker steals the slow
  /// worker's remaining morsels by simply claiming the next index), the
  /// calling thread participates, and the call returns only when all n
  /// invocations completed. `fn` must be safe to call concurrently for
  /// distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Tasks executed since construction (stats/tests).
  int64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t id);
  bool PopLocal(size_t id, std::function<void()>* task);
  bool Steal(size_t thief, std::function<void()>* task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<int64_t> pending_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<bool> stop_{false};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
};

}  // namespace datacell

#endif  // DATACELL_COMMON_THREAD_POOL_H_
