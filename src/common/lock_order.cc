#include "common/lock_order.h"

#if DATACELL_DEBUG_CHECKS_ENABLED

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace datacell {
namespace lockorder {

namespace {

/// One lock currently held by a thread.
struct HeldLock {
  const void* lock;
  int cls;
  std::string instance;
};

/// The stack of annotated locks the current thread holds, innermost last.
/// A plain thread_local: NoteAcquire/NoteRelease touch it without any global
/// lock, so the common no-nesting case stays cheap even in debug builds.
thread_local std::vector<HeldLock> t_held;

/// First-witness record for an order edge `from -> to`: the full held stack
/// at the moment the edge was established, for the abort diagnostic.
struct EdgeWitness {
  std::string description;  // rendered "thread T held [a, b] acquiring c"
};

/// Global acquisition-order graph over interned lock classes. `g_mu` is an
/// internal leaf lock (nothing is called out while holding it), so the
/// checker cannot itself deadlock with the locks it watches.
struct Graph {
  std::mutex mu;
  std::map<std::string, int> class_ids;
  std::vector<std::string> class_names;
  // adjacency[from] = set of classes acquired while holding `from`.
  std::map<int, std::set<int>> adjacency;
  std::map<std::pair<int, int>, EdgeWitness> witnesses;
};

Graph& graph() {
  static Graph* g = new Graph();  // leaked: alive for exiting threads
  return *g;
}

int InternClassLocked(Graph& g, const char* cls) {
  auto [it, inserted] = g.class_ids.emplace(cls, static_cast<int>(g.class_names.size()));
  if (inserted) g.class_names.push_back(cls);
  return it->second;
}

std::string RenderHeldStack(const std::vector<HeldLock>& held, const Graph& g,
                            const char* acquiring_cls,
                            const std::string& acquiring_inst) {
  std::ostringstream os;
  os << "thread " << std::this_thread::get_id() << " held [";
  for (size_t i = 0; i < held.size(); ++i) {
    if (i > 0) os << " -> ";
    os << g.class_names[static_cast<size_t>(held[i].cls)] << "('"
       << held[i].instance << "')";
  }
  os << "] while acquiring " << acquiring_cls << "('" << acquiring_inst
     << "')";
  return os.str();
}

/// True when `to` can already reach `from` in the order graph, i.e. adding
/// the edge `from -> to` would close a cycle. On success fills `path` with
/// the class chain to -> ... -> from.
bool PathExistsLocked(const Graph& g, int to, int from, std::vector<int>* path) {
  std::vector<int> stack{to};
  std::map<int, int> parent;  // node -> predecessor on the search path
  std::set<int> visited{to};
  while (!stack.empty()) {
    int node = stack.back();
    stack.pop_back();
    if (node == from) {
      // Reconstruct to -> ... -> from.
      std::vector<int> rev;
      for (int n = from; n != to; n = parent.at(n)) rev.push_back(n);
      rev.push_back(to);
      path->assign(rev.rbegin(), rev.rend());
      return true;
    }
    auto it = g.adjacency.find(node);
    if (it == g.adjacency.end()) continue;
    for (int next : it->second) {
      if (visited.insert(next).second) {
        parent[next] = node;
        stack.push_back(next);
      }
    }
  }
  return false;
}

[[noreturn]] void AbortWithCycle(const Graph& g, const std::string& current,
                                 const std::vector<int>& path) {
  std::ostringstream os;
  os << "LockOrderChecker: potential deadlock detected.\n"
     << "  offending acquisition: " << current << "\n"
     << "  conflicting established order:\n";
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    auto wit = g.witnesses.find({path[i], path[i + 1]});
    os << "    " << g.class_names[static_cast<size_t>(path[i])] << " -> "
       << g.class_names[static_cast<size_t>(path[i + 1])] << "  first seen: "
       << (wit != g.witnesses.end() ? wit->second.description : "<unknown>")
       << "\n";
  }
  std::fputs(os.str().c_str(), stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void NoteAcquire(const void* lock, const char* cls,
                 const std::string& instance) {
  if (t_held.empty()) {
    // Leaf acquisition: no ordering constraint to record; skip the global
    // lock entirely. Class interning happens lazily on first nesting.
    Graph& g = graph();
    std::lock_guard<std::mutex> guard(g.mu);
    t_held.push_back({lock, InternClassLocked(g, cls), instance});
    return;
  }
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  int to = InternClassLocked(g, cls);
  std::string current = RenderHeldStack(t_held, g, cls, instance);
  for (const HeldLock& held : t_held) {
    if (held.cls == to) {
      // Same-class nesting: either a recursive acquisition of one mutex
      // (guaranteed deadlock on std::mutex) or two instances of a class the
      // hierarchy declares unordered (e.g. two baskets): both abort.
      std::fprintf(stderr,
                   "LockOrderChecker: same-class nesting on lock class '%s'\n"
                   "  %s\n"
                   "  (already holding %s('%s'))\n",
                   cls, current.c_str(),
                   g.class_names[static_cast<size_t>(held.cls)].c_str(),
                   held.instance.c_str());
      std::fflush(stderr);
      std::abort();
    }
  }
  for (const HeldLock& held : t_held) {
    int from = held.cls;
    auto& out = g.adjacency[from];
    if (out.find(to) != out.end()) continue;  // edge already known
    std::vector<int> path;
    if (PathExistsLocked(g, to, from, &path)) {
      path.push_back(to);  // close the loop for the report: to..from -> to
      AbortWithCycle(g, current, path);
    }
    out.insert(to);
    g.witnesses[{from, to}] = EdgeWitness{current};
  }
  t_held.push_back({lock, to, instance});
}

void NoteRelease(const void* lock) {
  // Out-of-order release is legal; scan innermost-first.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->lock == lock) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "LockOrderChecker: release of lock %p not held by this thread\n",
               lock);
  std::fflush(stderr);
  std::abort();
}

size_t EdgeCount() {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  size_t n = 0;
  for (const auto& [from, out] : g.adjacency) n += out.size();
  return n;
}

void ResetForTest() {
  Graph& g = graph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.adjacency.clear();
  g.witnesses.clear();
  t_held.clear();
}

}  // namespace lockorder
}  // namespace datacell

#endif  // DATACELL_DEBUG_CHECKS_ENABLED
