#ifndef DATACELL_COMMON_CLOCK_H_
#define DATACELL_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace datacell {

/// Microseconds since an arbitrary epoch. All stream timestamps use this unit.
using Timestamp = int64_t;

constexpr Timestamp kMicrosPerMilli = 1000;
constexpr Timestamp kMicrosPerSecond = 1000 * 1000;

/// Time source abstraction. Production code uses `WallClock`; tests and the
/// deterministic engine mode use `SimulatedClock` so time-window behaviour is
/// exactly reproducible.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds.
  virtual Timestamp Now() const = 0;
};

/// Monotonic wall-clock time.
class WallClock final : public Clock {
 public:
  Timestamp Now() const override;
};

/// Manually advanced clock for deterministic tests and simulations.
class SimulatedClock final : public Clock {
 public:
  explicit SimulatedClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override {
    return now_.load(std::memory_order_acquire);
  }

  /// Moves time forward by `delta_us` (must be non-negative).
  void Advance(Timestamp delta_us) {
    now_.fetch_add(delta_us, std::memory_order_acq_rel);
  }

  /// Jumps to an absolute time (must not move backwards).
  void SetTime(Timestamp t);

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace datacell

#endif  // DATACELL_COMMON_CLOCK_H_
