#include "common/trace.h"

#include "common/lock_order.h"

#include <algorithm>
#include <functional>
#include <thread>

namespace datacell {

namespace {

uint32_t CurrentTid() {
  // A stable small-ish id per thread; Chrome's viewer only needs distinct
  // lanes, not OS thread ids.
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff);
}

void CopyName(char* dst, size_t cap, std::string_view src) {
  size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void AppendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

TraceRing::TraceRing(size_t capacity) : ring_(std::max<size_t>(1, capacity)) {}

void TraceRing::Push(const TraceEvent& e) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "trace_ring", "trace_ring");
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
  ++total_;
}

void TraceRing::RecordComplete(const char* category, std::string_view name,
                               Timestamp start_us, Timestamp dur_us,
                               const char* arg_name, int64_t arg) {
  if (!enabled()) return;
  TraceEvent e;
  CopyName(e.name, TraceEvent::kNameCapacity, name);
  e.category = category;
  e.phase = 'X';
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.tid = CurrentTid();
  e.arg_name = arg_name;
  e.arg = arg;
  Push(e);
}

void TraceRing::RecordInstant(const char* category, std::string_view name,
                              Timestamp ts_us, const char* arg_name,
                              int64_t arg) {
  if (!enabled()) return;
  TraceEvent e;
  CopyName(e.name, TraceEvent::kNameCapacity, name);
  e.category = category;
  e.phase = 'i';
  e.ts_us = ts_us;
  e.dur_us = 0;
  e.tid = CurrentTid();
  e.arg_name = arg_name;
  e.arg = arg;
  Push(e);
}

size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "trace_ring", "trace_ring");
  return count_;
}

uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "trace_ring", "trace_ring");
  return total_;
}

uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "trace_ring", "trace_ring");
  return total_ - count_;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "trace_ring", "trace_ring");
  head_ = 0;
  count_ = 0;
  total_ = 0;
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "trace_ring", "trace_ring");
  std::vector<TraceEvent> out;
  out.reserve(count_);
  // Oldest event sits at head_ once the ring has wrapped, else at 0.
  size_t start = count_ == ring_.size() ? head_ : 0;
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

std::string TraceRing::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, e.name);
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(e.tid) +
           ",\"ts\":" + std::to_string(e.ts_us);
    if (e.phase == 'X') {
      out += ",\"dur\":" + std::to_string(e.dur_us);
    } else if (e.phase == 'i') {
      // Instant events need a scope; "t" = thread-scoped.
      out += ",\"s\":\"t\"";
    }
    if (e.arg_name != nullptr) {
      out += ",\"args\":{\"";
      AppendJsonEscaped(out, e.arg_name);
      out += "\":" + std::to_string(e.arg) + "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace datacell
