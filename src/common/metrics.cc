#include "common/metrics.h"

#include <cmath>
#include <cstdio>

namespace datacell {

void SampleStats::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleStats::Sum() const {
  double s = 0;
  for (double v : samples_) s += v;
  return s;
}

double SampleStats::Mean() const {
  return samples_.empty() ? 0.0 : Sum() / static_cast<double>(samples_.size());
}

double SampleStats::Min() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double SampleStats::Max() const {
  EnsureSorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double SampleStats::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  if (q <= 0) return samples_.front();
  if (q >= 1) return samples_.back();
  size_t rank = static_cast<size_t>(q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[rank];
}

double SampleStats::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  double m = Mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

std::string SampleStats::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), Mean(), Percentile(0.5), Percentile(0.95),
                Percentile(0.99), Max());
  return buf;
}

}  // namespace datacell
