#ifndef DATACELL_ALGEBRA_LOWERING_H_
#define DATACELL_ALGEBRA_LOWERING_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/expression.h"
#include "algebra/operators.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace datacell {

/// Predicate lowering shared between the tree interpreter and the
/// registration-time plan specializer. Both must agree bit-for-bit on which
/// predicates map onto the select kernels and with which bounds, so the
/// rules live here once. The interpreter lowers per firing; the specializer
/// lowers once at registration (it only needs the schema, not a table).

/// A filter predicate lowered onto one column: an inclusive range over an
/// int64/timestamp or double column, or string equality. `empty` marks a
/// statically unsatisfiable predicate (e.g. `x < INT64_MIN`).
struct LoweredSelect {
  size_t column = 0;
  bool empty = false;
  bool is_string = false;
  std::string str_value;
  std::optional<int64_t> ilo, ihi;
  std::optional<double> dlo, dhi;
};

/// Matches a constant operand: a plain literal, or a numeric literal under a
/// unary minus (the parser produces `-(k)` for negative constants, never a
/// negative literal token). The folded value lands in `out`.
bool MatchLiteral(const Expr& e, Value* out);

/// Extracts (column, cmp-op, numeric-or-string literal) from `e`, accepting
/// the literal on either side (the op is mirrored so the column reads as the
/// left operand). Returns false when the shape does not match.
bool MatchComparison(const Expr& e, const Schema& input, size_t* column,
                     BinaryOp* op, Value* literal);

/// Lowers one comparison into range bounds on `out`. Returns false when the
/// column/literal type combination is not kernel-representable (double
/// literal against an int column, a 64-bit int literal that does not
/// round-trip through double against a double column, NaN, string ops other
/// than equality).
bool LowerComparison(const Schema& input, size_t column, BinaryOp op,
                     const Value& literal, LoweredSelect* out);

/// Conjunction of two lowered ranges on the same column.
void IntersectBounds(LoweredSelect* into, const LoweredSelect& other);

/// Tries to express `e` as a single-column kernel selection: one comparison,
/// or an AND of two comparisons on the same column (a range). Nulls never
/// qualify under either evaluator, so semantics match the generic path.
std::optional<LoweredSelect> TryLowerSelect(const Expr& e, const Schema& input);

/// Executes a lowered selection over `input`, returning qualifying
/// positions. Dispatches to the null-aware Select* kernels (morsel-parallel
/// with a pool in `ctx`).
std::vector<size_t> RunLoweredSelect(const LoweredSelect& sel,
                                     const Table& input,
                                     const ExecContext& ctx);

}  // namespace datacell

#endif  // DATACELL_ALGEBRA_LOWERING_H_
