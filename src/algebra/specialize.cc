#include "algebra/specialize.h"

#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "algebra/expression.h"
#include "algebra/operators.h"
#include "common/check.h"
#include "storage/batch_pool.h"

namespace datacell {

namespace {

// Lowered ranges keep absent bounds as nullopt; the kernels take concrete
// sentinels. Substitutions match the operators.cc wrappers exactly so both
// paths select the same positions.
int64_t ILo(const LoweredSelect& s) {
  return s.ilo.value_or(std::numeric_limits<int64_t>::min());
}
int64_t IHi(const LoweredSelect& s) {
  return s.ihi.value_or(std::numeric_limits<int64_t>::max());
}
double DLo(const LoweredSelect& s) {
  return s.dlo.value_or(-std::numeric_limits<double>::infinity());
}
double DHi(const LoweredSelect& s) {
  return s.dhi.value_or(std::numeric_limits<double>::infinity());
}

bool NumericColumn(DataType t) {
  return IsIntegerBacked(t) || t == DataType::kDouble;
}

}  // namespace

// Compiles a PlanNode tree into a SpecializedPipeline, or reports why it
// cannot. All shape checks live here so Run() never re-validates; any
// mismatch with the interpreter's supported shapes must fail compilation,
// never produce a divergent pipeline.
class PipelineBuilder {
 public:
  PipelineBuilder(const std::string& stream, const PlanBindings& statics)
      : stream_(stream), statics_(statics) {}

  SpecializeResult Build(const PlanNode& root);

 private:
  using Pred = SpecializedPipeline::Pred;
  using Proj = SpecializedPipeline::Proj;
  using Agg = SpecializedPipeline::Agg;

  // Constant predicates fold at compile time; kNone means `out` holds a
  // real compiled predicate.
  enum class Fold { kNone, kTrue, kFalse };

  static SpecializeResult Fail(std::string reason) {
    SpecializeResult r;
    r.fallback_reason = std::move(reason);
    return r;
  }

  bool CompilePred(const Expr& e, const Schema& s, Pred* out, Fold* fold);
  bool CompileProj(const Expr& e, DataType out_type, Proj* out);

  const std::string& stream_;
  const PlanBindings& statics_;
};

bool PipelineBuilder::CompilePred(const Expr& e, const Schema& s, Pred* out,
                                  Fold* fold) {
  *fold = Fold::kNone;
  // Constant folding first: the same folding the analyzer warns about
  // (P023), so a warned predicate and a specialized one always agree.
  if (auto k = TryFoldConstantPredicate(e)) {
    *fold = *k ? Fold::kTrue : Fold::kFalse;
    return true;
  }
  if (auto lowered = TryLowerSelect(e, s)) {
    out->kind = Pred::Kind::kLowered;
    out->lowered = std::move(*lowered);
    return true;
  }
  if (e.kind() == ExprKind::kBinary) {
    BinaryOp op = e.binary_op();
    if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
      Pred l, r;
      Fold fl, fr;
      if (!CompilePred(*e.left(), s, &l, &fl) ||
          !CompilePred(*e.right(), s, &r, &fr)) {
        return false;
      }
      // Under the evaluator's null-as-false semantics, a constant operand
      // folds exactly like two-valued logic: false AND x == false even when
      // x is null, true OR x == true likewise.
      if (op == BinaryOp::kAnd) {
        if (fl == Fold::kFalse || fr == Fold::kFalse) {
          *fold = Fold::kFalse;
          return true;
        }
        if (fl == Fold::kTrue && fr == Fold::kTrue) {
          *fold = Fold::kTrue;
          return true;
        }
        if (fl == Fold::kTrue) {
          *out = std::move(r);
          return true;
        }
        if (fr == Fold::kTrue) {
          *out = std::move(l);
          return true;
        }
        // Same-column numeric ranges conjoin into one kernel pass.
        if (l.kind == Pred::Kind::kLowered && r.kind == Pred::Kind::kLowered &&
            !l.lowered.is_string && !r.lowered.is_string &&
            l.lowered.column == r.lowered.column) {
          IntersectBounds(&l.lowered, r.lowered);
          *out = std::move(l);
          return true;
        }
      } else {
        if (fl == Fold::kTrue || fr == Fold::kTrue) {
          *fold = Fold::kTrue;
          return true;
        }
        if (fl == Fold::kFalse && fr == Fold::kFalse) {
          *fold = Fold::kFalse;
          return true;
        }
        if (fl == Fold::kFalse) {
          *out = std::move(r);
          return true;
        }
        if (fr == Fold::kFalse) {
          *out = std::move(l);
          return true;
        }
      }
      out->kind = op == BinaryOp::kAnd ? Pred::Kind::kAnd : Pred::Kind::kOr;
      out->children.push_back(std::move(l));
      out->children.push_back(std::move(r));
      return true;
    }
    if (op == BinaryOp::kNe) {
      // <> lowers through the equality kernel: complement of the eq
      // positions, minus nulls (null <> v is false, but a null position is
      // absent from the eq list and would otherwise survive complementing).
      const Expr* col = nullptr;
      Value lit;
      if (e.left()->kind() == ExprKind::kColumnRef &&
          MatchLiteral(*e.right(), &lit)) {
        col = e.left().get();
      } else if (e.right()->kind() == ExprKind::kColumnRef &&
                 MatchLiteral(*e.left(), &lit)) {
        col = e.right().get();
      }
      if (col == nullptr || lit.is_null()) return false;
      if (col->column_index() >= s.num_fields()) return false;
      LoweredSelect eq;
      if (!LowerComparison(s, col->column_index(), BinaryOp::kEq, lit, &eq)) {
        return false;
      }
      out->kind = Pred::Kind::kNotEqual;
      out->lowered = std::move(eq);
      return true;
    }
    if (op == BinaryOp::kLike) {
      if (e.left()->kind() != ExprKind::kColumnRef ||
          e.left()->type() != DataType::kString ||
          e.right()->kind() != ExprKind::kLiteral ||
          !e.right()->literal().is_string() ||
          e.left()->column_index() >= s.num_fields()) {
        return false;
      }
      out->kind = Pred::Kind::kLike;
      out->column = e.left()->column_index();
      out->pattern = e.right()->literal().string_value();
      return true;
    }
    return false;
  }
  if (e.kind() == ExprKind::kUnary) {
    UnaryOp op = e.unary_op();
    if (op == UnaryOp::kNot) {
      Pred c;
      Fold fc;
      if (!CompilePred(*e.operand(), s, &c, &fc)) return false;
      if (fc == Fold::kTrue) {
        *fold = Fold::kFalse;
        return true;
      }
      if (fc == Fold::kFalse) {
        *fold = Fold::kTrue;
        return true;
      }
      out->kind = Pred::Kind::kNot;
      out->children.push_back(std::move(c));
      return true;
    }
    if (op == UnaryOp::kIsNull || op == UnaryOp::kIsNotNull) {
      if (e.operand()->kind() != ExprKind::kColumnRef ||
          e.operand()->column_index() >= s.num_fields()) {
        return false;
      }
      out->kind = op == UnaryOp::kIsNull ? Pred::Kind::kIsNull
                                         : Pred::Kind::kIsNotNull;
      out->column = e.operand()->column_index();
      return true;
    }
    return false;
  }
  if (e.kind() == ExprKind::kColumnRef && e.type() == DataType::kBool) {
    if (e.column_index() >= s.num_fields()) return false;
    out->kind = Pred::Kind::kBoolColumn;
    out->column = e.column_index();
    return true;
  }
  return false;
}

bool PipelineBuilder::CompileProj(const Expr& e, DataType out_type,
                                  Proj* out) {
  if (e.kind() == ExprKind::kColumnRef) {
    out->kind = Proj::Kind::kColumn;
    out->column = e.column_index();
    return true;
  }
  if (e.kind() != ExprKind::kBinary) return false;
  BinaryOp op = e.binary_op();
  if (op != BinaryOp::kAdd && op != BinaryOp::kSub && op != BinaryOp::kMul &&
      op != BinaryOp::kDiv && op != BinaryOp::kMod) {
    return false;
  }
  const Expr* col = nullptr;
  Value v;
  bool literal_on_left = false;
  if (e.left()->kind() == ExprKind::kColumnRef && MatchLiteral(*e.right(), &v)) {
    col = e.left().get();
  } else if (e.right()->kind() == ExprKind::kColumnRef &&
             MatchLiteral(*e.left(), &v)) {
    col = e.right().get();
    literal_on_left = true;
  } else {
    return false;
  }
  // A null literal poisons every row to null; leave that to the
  // interpreter rather than special-casing a degenerate projection.
  if (!(v.is_int64() || v.is_double() || v.is_timestamp())) return false;
  if (!NumericColumn(col->type())) return false;
  if (out_type != DataType::kInt64 && out_type != DataType::kDouble) {
    return false;
  }
  // The integer path reads Int64At on both operands.
  if (out_type == DataType::kInt64 && v.is_double()) return false;
  out->kind = Proj::Kind::kArith;
  out->column = col->column_index();
  out->op = op;
  out->literal_on_left = literal_on_left;
  out->literal = v;
  out->out_type = out_type;
  return true;
}

SpecializeResult PipelineBuilder::Build(const PlanNode& root) {
  auto pipe = std::make_unique<SpecializedPipeline>();
  const PlanNode* n = &root;
  const PlanNode* aggnode = nullptr;
  const PlanNode* pre = nullptr;      // ref-only projection under aggregate
  const PlanNode* projectnode = nullptr;
  const PlanNode* postnode = nullptr;  // projection over the aggregate row

  // The planner roots every aggregating query as Project(Aggregate(...)) —
  // the post-projection reorders or derives the final columns from the
  // one-row aggregate output.
  if (n->kind() == PlanKind::kProject && n->child() != nullptr &&
      n->child()->kind() == PlanKind::kAggregate) {
    postnode = n;
    n = n->child().get();
  }
  if (n->kind() == PlanKind::kAggregate) {
    if (!n->group_columns().empty()) return Fail("GROUP BY aggregate");
    aggnode = n;
    n = n->child().get();
    if (n->kind() == PlanKind::kProject) {
      // Mirror the interpreter's fusion rule: aggregate inputs must be
      // plain column refs through the pre-projection so they can be read
      // straight from the projection's input.
      for (const AggSpec& a : aggnode->aggregates()) {
        if (!a.count_star && n->projections()[a.input_column]->kind() !=
                                 ExprKind::kColumnRef) {
          return Fail("aggregate input is a computed projection");
        }
      }
      pre = n;
      n = n->child().get();
    }
  } else if (n->kind() == PlanKind::kProject) {
    projectnode = n;
    n = n->child().get();
  }

  std::vector<const PlanNode*> filters;
  while (n->kind() == PlanKind::kFilter) {
    filters.push_back(n);
    n = n->child().get();
  }

  Schema source;  // schema the filter/project/aggregate stages see
  std::string build_name;
  if (n->kind() == PlanKind::kScan) {
    if (n->scan_relation() != stream_) {
      return Fail("scan of non-stream relation '" + n->scan_relation() + "'");
    }
    source = n->output_schema();
    pipe->input_arity_ = source.num_fields();
  } else if (n->kind() == PlanKind::kHashJoin) {
    const PlanNode& j = *n;
    const PlanNode* l = j.child(0).get();
    const PlanNode* r = j.child(1).get();
    if (l->kind() != PlanKind::kScan || r->kind() != PlanKind::kScan) {
      return Fail("join input is not a plain scan");
    }
    if (l->scan_relation() != stream_) {
      return Fail("stream is not the probe (left) side of the join");
    }
    auto it = statics_.find(r->scan_relation());
    if (it == statics_.end() || it->second == nullptr) {
      return Fail("join build side '" + r->scan_relation() +
                  "' is not a bound static table");
    }
    if (it->second->num_columns() != r->output_schema().num_fields()) {
      return Fail("join build side arity mismatch");
    }
    DataType lk = l->output_schema().field(j.left_key()).type;
    DataType rk = r->output_schema().field(j.right_key()).type;
    if (!IsIntegerBacked(lk) || !IsIntegerBacked(rk)) {
      return Fail("join key is not integer-backed");
    }
    SpecializedPipeline::Join jn;
    jn.probe_key = j.left_key();
    jn.build_key = j.right_key();
    jn.build_table = it->second;
    jn.mid_schema = j.output_schema();
    pipe->join_.emplace(std::move(jn));
    source = j.output_schema();
    pipe->input_arity_ = l->output_schema().num_fields();
    build_name = r->scan_relation();
  } else {
    return Fail("unsupported operator: " + n->Describe());
  }

  // Compile the filter stack bottom-up into one predicate tree. Each filter
  // only drops rows, so a row survives the stack iff it satisfies every
  // predicate — the conjunction evaluated on the source schema (all stacked
  // filters share it) selects the same rows the sequential filters would.
  std::optional<Pred> combined;
  std::vector<std::string> filter_desc;
  bool always_false = false;
  for (auto fit = filters.rbegin(); fit != filters.rend(); ++fit) {
    const Expr& pe = *(*fit)->predicate();
    Pred p;
    Fold fold = Fold::kNone;
    if (!CompilePred(pe, source, &p, &fold)) {
      return Fail("predicate not specializable: " + pe.ToString());
    }
    if (fold == Fold::kTrue) {
      filter_desc.push_back(pe.ToString() + "  [constant true: eliminated]");
      continue;
    }
    if (fold == Fold::kFalse) {
      always_false = true;
      filter_desc.push_back(pe.ToString() +
                            "  [constant false: selects nothing]");
      continue;
    }
    filter_desc.push_back(pe.ToString());
    if (!combined) {
      combined.emplace(std::move(p));
    } else if (combined->kind == Pred::Kind::kLowered &&
               p.kind == Pred::Kind::kLowered && !combined->lowered.is_string &&
               !p.lowered.is_string &&
               combined->lowered.column == p.lowered.column) {
      IntersectBounds(&combined->lowered, p.lowered);
    } else {
      Pred andp;
      andp.kind = Pred::Kind::kAnd;
      andp.children.push_back(std::move(*combined));
      andp.children.push_back(std::move(p));
      combined.emplace(std::move(andp));
    }
  }
  if (always_false) {
    pipe->always_false_ = true;
  } else {
    pipe->filter_ = std::move(combined);
  }

  if (projectnode != nullptr) {
    std::vector<Proj> projs;
    const Schema& os = projectnode->output_schema();
    for (size_t i = 0; i < projectnode->projections().size(); ++i) {
      const Expr& e = *projectnode->projections()[i];
      Proj pr;
      if (!CompileProj(e, os.field(i).type, &pr)) {
        return Fail("projection not specializable: " + e.ToString());
      }
      projs.push_back(std::move(pr));
    }
    pipe->project_.emplace(std::move(projs));
  }

  if (aggnode != nullptr) {
    std::vector<Agg> aggs;
    for (const AggSpec& a : aggnode->aggregates()) {
      Agg g;
      g.func = a.func;
      g.count_star = a.count_star;
      if (!a.count_star) {
        size_t col = pre != nullptr
                         ? pre->projections()[a.input_column]->column_index()
                         : a.input_column;
        if (col >= source.num_fields()) {
          return Fail("aggregate input column out of range");
        }
        g.column = col;
        g.col_type = source.field(col).type;
        if (g.col_type == DataType::kString && a.func != AggFunc::kCount) {
          return Fail("aggregate over a string column");
        }
      }
      aggs.push_back(g);
    }
    pipe->aggregates_.emplace(std::move(aggs));
    pipe->agg_schema_ = aggnode->output_schema();
  }

  if (postnode != nullptr) {
    std::vector<Proj> projs;
    const Schema& os = postnode->output_schema();
    for (size_t i = 0; i < postnode->projections().size(); ++i) {
      const Expr& e = *postnode->projections()[i];
      Proj pr;
      if (!CompileProj(e, os.field(i).type, &pr)) {
        return Fail("post-aggregate projection not specializable: " +
                    e.ToString());
      }
      projs.push_back(std::move(pr));
    }
    pipe->post_project_.emplace(std::move(projs));
  }

  pipe->output_schema_ = root.output_schema();

  // Human-readable step list for \explain, in execution order.
  std::string d = "specialized pipeline:\n";
  int step = 1;
  d += "  " + std::to_string(step++) + ". scan " + stream_ + " (" +
       std::to_string(pipe->input_arity_) + " columns)\n";
  if (pipe->join_) {
    d += "  " + std::to_string(step++) + ". hash-join probe: " + stream_ +
         "[" + std::to_string(pipe->join_->probe_key) + "] = " + build_name +
         "[" + std::to_string(pipe->join_->build_key) +
         "] (index over the static side, rebuilt only when it grows)\n";
  }
  for (const std::string& fd : filter_desc) {
    d += "  " + std::to_string(step++) + ". filter: " + fd + "\n";
  }
  if (pipe->filter_ && pipe->filter_->kind == Pred::Kind::kLowered &&
      !pipe->filter_->lowered.is_string) {
    d += "       [kernel range select; fuses with a same-column projection "
         "or aggregate on null-free columns]\n";
  }
  if (projectnode != nullptr) {
    std::string cols;
    for (size_t i = 0; i < projectnode->projections().size(); ++i) {
      if (i > 0) cols += ", ";
      cols += projectnode->projections()[i]->ToString();
    }
    d += "  " + std::to_string(step++) + ". project: " + cols + "\n";
  }
  if (aggnode != nullptr) {
    std::string cols;
    for (size_t i = 0; i < aggnode->aggregates().size(); ++i) {
      const AggSpec& a = aggnode->aggregates()[i];
      if (i > 0) cols += ", ";
      cols += std::string(AggFuncToString(a.func)) + "(" +
              (a.count_star ? "*"
                            : source.field((*pipe->aggregates_)[i].column).name) +
              ")";
    }
    d += "  " + std::to_string(step++) + ". aggregate: " + cols + "\n";
  }
  if (postnode != nullptr) {
    std::string cols;
    for (size_t i = 0; i < postnode->projections().size(); ++i) {
      if (i > 0) cols += ", ";
      cols += postnode->output_schema().field(i).name;
    }
    d += "  " + std::to_string(step++) + ". project result: " + cols + "\n";
  }
  pipe->description_ = std::move(d);

  SpecializeResult res;
  res.pipeline = std::move(pipe);
  return res;
}

SpecializeResult SpecializePlan(const PlanNode& plan,
                                const std::string& stream_relation,
                                const PlanBindings& static_bindings) {
  PipelineBuilder b(stream_relation, static_bindings);
  return b.Build(plan);
}

// --- Runtime ------------------------------------------------------------

size_t SpecializedPipeline::JoinStateBytes(int64_t string_bytes) const {
  if (!join_ || join_->build_table == nullptr) return 0;
  const Table& build = *join_->build_table;
  int64_t row_bytes = build.schema().EstimatedRowBytes(string_bytes);
  return build.num_rows() * static_cast<size_t>(row_bytes) +
         join_->index.memory_bytes();
}

void SpecializedPipeline::RegisterProfileSteps(PipelineProfile* profile) {
  if (join_) join_step_ = profile->AddStep("hash-join probe", 0);
  if (filter_ || always_false_) filter_step_ = profile->AddStep("filter", 0);
  if (project_) project_step_ = profile->AddStep("project", 0);
  if (aggregates_) agg_step_ = profile->AddStep("aggregate", 0);
  if (post_project_) post_step_ = profile->AddStep("post-project", 0);
  if (!project_ && !aggregates_) {
    project_step_ = profile->AddStep("materialize", 0);
  }
}

void SpecializedPipeline::EvalPred(const Pred& p, const Table& in,
                                   const ExecContext& ctx,
                                   std::vector<size_t>* out) const {
  size_t n = in.num_rows();
  out->clear();
  switch (p.kind) {
    case Pred::Kind::kLowered: {
      const LoweredSelect& l = p.lowered;
      if (l.empty) return;
      const Bat& col = *in.column(l.column);
      // Null-free numeric selects skip the generic wrapper's allocation and
      // dispatch; parallel-sized inputs keep the morsel path.
      if (!l.is_string && !col.has_nulls() && !ctx.ShouldParallelize(n)) {
        out->resize(n);
        size_t k;
        if (col.type() == DataType::kDouble) {
          k = kernel::SelectRangeDouble(col.double_data().data(), DLo(l),
                                        DHi(l), 0, n, out->data());
        } else {
          k = kernel::SelectRangeInt64(col.int64_data().data(), ILo(l),
                                       IHi(l), 0, n, out->data());
        }
        out->resize(k);
        return;
      }
      *out = RunLoweredSelect(l, in, ctx);
      return;
    }
    case Pred::Kind::kNotEqual: {
      std::vector<size_t> eq = RunLoweredSelect(p.lowered, in, ctx);
      std::vector<size_t> comp = ComplementPositions(eq, n);
      const Bat& col = *in.column(p.lowered.column);
      if (!col.has_nulls()) {
        *out = std::move(comp);
        return;
      }
      // null <> v is false, but nulls are absent from the eq positions and
      // would otherwise survive the complement.
      out->reserve(comp.size());
      for (size_t pos : comp) {
        if (!col.IsNull(pos)) out->push_back(pos);
      }
      return;
    }
    case Pred::Kind::kBoolColumn: {
      const Bat& col = *in.column(p.column);
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsNull(i) && col.BoolAt(i)) out->push_back(i);
      }
      return;
    }
    case Pred::Kind::kIsNull: {
      const Bat& col = *in.column(p.column);
      if (!col.has_nulls()) return;
      for (size_t i = 0; i < n; ++i) {
        if (col.IsNull(i)) out->push_back(i);
      }
      return;
    }
    case Pred::Kind::kIsNotNull: {
      const Bat& col = *in.column(p.column);
      if (!col.has_nulls()) {
        out->resize(n);
        std::iota(out->begin(), out->end(), size_t{0});
        return;
      }
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsNull(i)) out->push_back(i);
      }
      return;
    }
    case Pred::Kind::kLike: {
      const Bat& col = *in.column(p.column);
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsNull(i) && LikeMatch(col.StringAt(i), p.pattern)) {
          out->push_back(i);
        }
      }
      return;
    }
    case Pred::Kind::kNot: {
      // NOT over null-as-false evaluates true at nulls, so the plain
      // complement (which keeps null positions) is exactly right.
      std::vector<size_t> c;
      EvalPred(p.children[0], in, ctx, &c);
      *out = ComplementPositions(c, n);
      return;
    }
    case Pred::Kind::kAnd:
    case Pred::Kind::kOr: {
      std::vector<size_t> a, b;
      EvalPred(p.children[0], in, ctx, &a);
      EvalPred(p.children[1], in, ctx, &b);
      *out = p.kind == Pred::Kind::kAnd ? IntersectPositions(a, b)
                                        : UnionPositions(a, b);
      return;
    }
  }
}

Status SpecializedPipeline::RunProjection(const Proj& p, const Table& in,
                                          const std::vector<size_t>* positions,
                                          Bat* out) const {
  const Bat& col = *in.column(p.column);
  if (p.kind == Proj::Kind::kColumn) {
    if (positions != nullptr) {
      out->AppendPositions(col, *positions);
    } else {
      out->AppendBat(col);
    }
    return Status::OK();
  }
  // Column-op-literal arithmetic, replicating EvalArithmetic row for row
  // (including null propagation and div/mod-by-zero -> null).
  size_t n = positions != nullptr ? positions->size() : in.num_rows();
  auto pos_at = [&](size_t i) {
    return positions != nullptr ? (*positions)[i] : i;
  };
  if (p.out_type == DataType::kInt64) {
    int64_t lv = p.literal.is_double()
                     ? 0  // unreachable: compile rejects double literals here
                     : p.literal.int64_value();
    for (size_t i = 0; i < n; ++i) {
      size_t pos = pos_at(i);
      if (col.IsNull(pos)) {
        out->AppendNull();
        continue;
      }
      int64_t cv = col.Int64At(pos);
      int64_t a = p.literal_on_left ? lv : cv;
      int64_t b = p.literal_on_left ? cv : lv;
      switch (p.op) {
        case BinaryOp::kAdd:
          out->AppendInt64(a + b);
          break;
        case BinaryOp::kSub:
          out->AppendInt64(a - b);
          break;
        case BinaryOp::kMul:
          out->AppendInt64(a * b);
          break;
        case BinaryOp::kDiv:
          if (b == 0) {
            out->AppendNull();
          } else {
            out->AppendInt64(a / b);
          }
          break;
        case BinaryOp::kMod:
          if (b == 0) {
            out->AppendNull();
          } else {
            out->AppendInt64(a % b);
          }
          break;
        default:
          return Status::Internal("bad specialized arithmetic op");
      }
    }
    return Status::OK();
  }
  // Double path: operands convert through double exactly like NumericAt.
  double lv = p.literal.is_double() ? p.literal.double_value()
                                    : static_cast<double>(
                                          p.literal.int64_value());
  bool col_is_double = col.type() == DataType::kDouble;
  for (size_t i = 0; i < n; ++i) {
    size_t pos = pos_at(i);
    if (col.IsNull(pos)) {
      out->AppendNull();
      continue;
    }
    double cv = col_is_double ? col.DoubleAt(pos)
                              : static_cast<double>(col.Int64At(pos));
    double a = p.literal_on_left ? lv : cv;
    double b = p.literal_on_left ? cv : lv;
    switch (p.op) {
      case BinaryOp::kAdd:
        out->AppendDouble(a + b);
        break;
      case BinaryOp::kSub:
        out->AppendDouble(a - b);
        break;
      case BinaryOp::kMul:
        out->AppendDouble(a * b);
        break;
      case BinaryOp::kDiv:
        if (b == 0.0) {
          out->AppendNull();
        } else {
          out->AppendDouble(a / b);
        }
        break;
      case BinaryOp::kMod:
        if (b == 0.0) {
          out->AppendNull();
        } else {
          out->AppendDouble(std::fmod(a, b));
        }
        break;
      default:
        return Status::Internal("bad specialized arithmetic op");
    }
  }
  return Status::OK();
}

Result<TablePtr> SpecializedPipeline::RunAggregate(const Table& in,
                                                   const ExecContext& ctx,
                                                   BatchPool* pool) {
  size_t n = in.num_rows();
  PipelineProfile* prof = ctx.profile;
  int64_t t_start = prof != nullptr ? ProfileNowNs() : 0;
  int64_t filter_ns = 0;
  const std::vector<Agg>& aggs = *aggregates_;
  const Pred* f = filter_ ? &*filter_ : nullptr;
  const LoweredSelect* range = nullptr;  // single fusable range filter
  bool empty_sel = always_false_;
  if (f != nullptr && f->kind == Pred::Kind::kLowered) {
    if (f->lowered.empty) {
      empty_sel = true;
    } else if (!f->lowered.is_string) {
      range = &f->lowered;
    }
  }
  bool have_positions = false;
  auto positions = [&]() {
    if (!have_positions) {
      int64_t ft0 = prof != nullptr ? ProfileNowNs() : 0;
      EvalPred(*f, in, ctx, &sel_);
      if (prof != nullptr) filter_ns = ProfileNowNs() - ft0;
      have_positions = true;
    }
    return &sel_;
  };
  // The fused kernel needs raw null-free numeric buffers on both the filter
  // and the value column.
  auto fusable = [&](const Agg& g) {
    const Bat& fcol = *in.column(range->column);
    if (fcol.has_nulls()) return false;
    if (g.count_star) return true;
    const Bat& vcol = *in.column(g.column);
    return !vcol.has_nulls() && NumericColumn(vcol.type());
  };
  TablePtr out = AcquireOutput(pool);
  Row row;
  row.reserve(aggs.size());
  for (const Agg& g : aggs) {
    AggPartial p;
    if (empty_sel) {
      // No qualifying rows: count 0, sum/min/max at their identities, which
      // Finalize turns into 0 / null exactly like the interpreter.
    } else if (f == nullptr) {
      if (g.count_star) {
        p.count = static_cast<int64_t>(n);
      } else {
        DC_ASSIGN_OR_RETURN(p, AggregateAll(*in.column(g.column), nullptr,
                                            ctx));
      }
    } else if (range != nullptr && fusable(g)) {
      const Bat& fcol = *in.column(range->column);
      const Bat& vcol = g.count_star ? fcol : *in.column(g.column);
      kernel::FilterAggResult r;
      if (fcol.type() == DataType::kDouble) {
        if (vcol.type() == DataType::kDouble) {
          kernel::FilterAggDoubleDouble(fcol.double_data().data(), DLo(*range),
                                        DHi(*range), vcol.double_data().data(),
                                        n, &r);
        } else {
          kernel::FilterAggDoubleInt64(fcol.double_data().data(), DLo(*range),
                                       DHi(*range), vcol.int64_data().data(),
                                       n, &r);
        }
      } else if (vcol.type() == DataType::kDouble) {
        kernel::FilterAggInt64Double(fcol.int64_data().data(), ILo(*range),
                                     IHi(*range), vcol.double_data().data(), n,
                                     &r);
      } else {
        kernel::FilterAggInt64Int64(fcol.int64_data().data(), ILo(*range),
                                    IHi(*range), vcol.int64_data().data(), n,
                                    &r);
      }
      p.count = r.count;
      p.sum = r.sum;
      p.min = r.min;
      p.max = r.max;
    } else {
      if (g.count_star) {
        p.count = static_cast<int64_t>(positions()->size());
      } else {
        DC_ASSIGN_OR_RETURN(p,
                            AggregateAll(*in.column(g.column), positions(),
                                         ctx));
      }
    }
    row.push_back(p.Finalize(g.func));
  }
  if (prof != nullptr) {
    // Fused filter+aggregate firings never materialize a selection; their
    // whole span lands on the aggregate step, mirroring RunStages' fused
    // attribution. Explicit EvalPred time goes to the filter step.
    if (have_positions) {
      prof->RecordStep(filter_step_, static_cast<int64_t>(n),
                       static_cast<int64_t>(sel_.size()), filter_ns);
    }
    int64_t agg_in = have_positions ? static_cast<int64_t>(sel_.size())
                                    : static_cast<int64_t>(n);
    prof->RecordStep(agg_step_, agg_in, 1, ProfileNowNs() - t_start - filter_ns);
  }
  if (!post_project_) {
    DC_RETURN_NOT_OK(out->AppendRow(row));
    return out;
  }
  // Post-projection over the one-row aggregate output (reorder / arith).
  int64_t pt0 = prof != nullptr ? ProfileNowNs() : 0;
  Table mid("", agg_schema_);
  DC_RETURN_NOT_OK(mid.AppendRow(row));
  for (size_t i = 0; i < post_project_->size(); ++i) {
    DC_RETURN_NOT_OK(RunProjection((*post_project_)[i], mid, nullptr,
                                   out->column(i).get()));
  }
  if (prof != nullptr) {
    prof->RecordStep(post_step_, 1, 1, ProfileNowNs() - pt0);
  }
  return out;
}

Result<TablePtr> SpecializedPipeline::RunStages(const Table& in,
                                                const ExecContext& ctx,
                                                BatchPool* pool) {
  if (aggregates_) return RunAggregate(in, ctx, pool);
  size_t n = in.num_rows();
  PipelineProfile* prof = ctx.profile;
  TablePtr out = AcquireOutput(pool);
  if (always_false_) {
    if (prof != nullptr) {
      prof->RecordStep(filter_step_, static_cast<int64_t>(n), 0, 0);
    }
    return out;
  }
  if (!filter_) {
    int64_t t0 = prof != nullptr ? ProfileNowNs() : 0;
    if (project_) {
      for (size_t i = 0; i < project_->size(); ++i) {
        DC_RETURN_NOT_OK(
            RunProjection((*project_)[i], in, nullptr, out->column(i).get()));
      }
    } else {
      for (size_t c = 0; c < in.num_columns(); ++c) {
        out->column(c)->AppendBat(*in.column(c));
      }
    }
    if (prof != nullptr) {
      prof->RecordStep(project_step_, static_cast<int64_t>(n),
                       static_cast<int64_t>(n), ProfileNowNs() - t0);
    }
    return out;
  }
  const Pred& f = *filter_;
  if (f.kind == Pred::Kind::kLowered && f.lowered.empty) {
    if (prof != nullptr) {
      prof->RecordStep(filter_step_, static_cast<int64_t>(n), 0, 0);
    }
    return out;
  }
  // Fused filter→project: a single range filter over a null-free numeric
  // column whose values are the only thing projected compresses qualifying
  // values straight into the output — no selection vector at all.
  if (f.kind == Pred::Kind::kLowered && !f.lowered.is_string &&
      !ctx.ShouldParallelize(n)) {
    const Bat& fcol = *in.column(f.lowered.column);
    if (!fcol.has_nulls()) {
      bool compress;
      size_t ncols;
      if (project_) {
        compress = true;
        for (const Proj& p : *project_) {
          if (p.kind != Proj::Kind::kColumn || p.column != f.lowered.column) {
            compress = false;
            break;
          }
        }
        ncols = project_->size();
      } else {
        compress = in.num_columns() == 1 && f.lowered.column == 0;
        ncols = in.num_columns();
      }
      if (compress) {
        int64_t t0 = prof != nullptr ? ProfileNowNs() : 0;
        for (size_t i = 0; i < ncols; ++i) {
          Bat* oc = out->column(i).get();
          size_t k;
          if (fcol.type() == DataType::kDouble) {
            double* dst = oc->AppendUninitializedDouble(n);
            k = kernel::FilterValuesDouble(fcol.double_data().data(),
                                           DLo(f.lowered), DHi(f.lowered), n,
                                           dst);
          } else {
            int64_t* dst = oc->AppendUninitializedInt64(n);
            k = kernel::FilterValuesInt64(fcol.int64_data().data(),
                                          ILo(f.lowered), IHi(f.lowered), n,
                                          dst);
          }
          oc->Truncate(k);
        }
        if (prof != nullptr) {
          // The fused kernel filters and projects in one pass; the whole
          // span lands on the filter step (see RegisterProfileSteps).
          prof->RecordStep(filter_step_, static_cast<int64_t>(n),
                           static_cast<int64_t>(out->num_rows()),
                           ProfileNowNs() - t0);
        }
        return out;
      }
    }
  }
  int64_t ft0 = prof != nullptr ? ProfileNowNs() : 0;
  EvalPred(f, in, ctx, &sel_);
  if (prof != nullptr) {
    prof->RecordStep(filter_step_, static_cast<int64_t>(n),
                     static_cast<int64_t>(sel_.size()), ProfileNowNs() - ft0);
  }
  int64_t pt0 = prof != nullptr ? ProfileNowNs() : 0;
  if (project_) {
    for (size_t i = 0; i < project_->size(); ++i) {
      DC_RETURN_NOT_OK(
          RunProjection((*project_)[i], in, &sel_, out->column(i).get()));
    }
  } else {
    for (size_t c = 0; c < in.num_columns(); ++c) {
      out->column(c)->AppendPositions(*in.column(c), sel_);
    }
  }
  if (prof != nullptr) {
    prof->RecordStep(project_step_, static_cast<int64_t>(sel_.size()),
                     static_cast<int64_t>(sel_.size()), ProfileNowNs() - pt0);
  }
  return out;
}

Result<TablePtr> SpecializedPipeline::Run(const Table& input,
                                          const ExecContext& ctx,
                                          BatchPool* pool) {
  if (input.num_columns() != input_arity_) {
    return Status::Internal(
        "specialized pipeline arity mismatch: expected " +
        std::to_string(input_arity_) + " columns, got " +
        std::to_string(input.num_columns()));
  }
  const Table* cur = &input;
  TablePtr mid;
  if (join_) {
    int64_t jt0 = ctx.profile != nullptr ? ProfileNowNs() : 0;
    Join& j = *join_;
    const Bat& bk = *j.build_table->column(j.build_key);
    if (j.build_table->num_rows() != j.built_rows) {
      j.index.Build(bk.int64_data().data(), bk.validity_data(), bk.size());
      j.built_rows = j.build_table->num_rows();
    }
    probe_pos_.clear();
    build_pos_.clear();
    const Bat& pk = *input.column(j.probe_key);
    j.index.Probe(pk.int64_data().data(), pk.validity_data(), pk.size(),
                  &probe_pos_, &build_pos_);
    TablePtr m = pool != nullptr ? pool->AcquireTable("", j.mid_schema)
                                 : std::make_shared<Table>("", j.mid_schema);
    for (size_t c = 0; c < input.num_columns(); ++c) {
      m->column(c)->AppendPositions(*input.column(c), probe_pos_);
    }
    size_t base = input.num_columns();
    for (size_t c = 0; c < j.build_table->num_columns(); ++c) {
      m->column(base + c)->AppendPositions(*j.build_table->column(c),
                                           build_pos_);
    }
    mid = std::move(m);
    cur = mid.get();
    if (ctx.profile != nullptr) {
      ctx.profile->RecordStep(join_step_,
                              static_cast<int64_t>(input.num_rows()),
                              static_cast<int64_t>(probe_pos_.size()),
                              ProfileNowNs() - jt0);
    }
  }
  Result<TablePtr> result = RunStages(*cur, ctx, pool);
  // The join intermediate never escapes (every later stage copies), so its
  // buffers can cycle back to the pool immediately.
  if (mid != nullptr && pool != nullptr && mid.use_count() == 1) {
    pool->Recycle(*mid);
  }
  return result;
}

TablePtr SpecializedPipeline::AcquireOutput(BatchPool* pool) const {
  return pool != nullptr ? pool->AcquireTable("", output_schema_)
                         : std::make_shared<Table>("", output_schema_);
}

}  // namespace datacell
