#ifndef DATACELL_ALGEBRA_EXPRESSION_H_
#define DATACELL_ALGEBRA_EXPRESSION_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/source_loc.h"
#include "storage/bat.h"
#include "storage/table.h"

namespace datacell {

/// Node kinds of the scalar expression tree. Expressions are evaluated in
/// bulk: one column (BAT) per sub-expression over the whole input table —
/// the column-store execution style the paper's argument rests on.
enum class ExprKind {
  kColumnRef,
  kLiteral,
  kBinary,
  kUnary,
  kFunction,
  kCase,
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  /// SQL LIKE over strings: '%' matches any run, '_' one character.
  kLike,
};

enum class UnaryOp {
  kNot,
  kNeg,
  kIsNull,
  kIsNotNull,
};

/// Built-in scalar functions.
enum class ScalarFunc {
  kAbs,     // numeric -> same numeric family
  kFloor,   // numeric -> double
  kCeil,    // numeric -> double
  kRound,   // numeric -> double
  kSqrt,    // numeric -> double
  kLength,  // string -> int64
  kLower,   // string -> string
  kUpper,   // string -> string
  /// Truncating numeric -> int64 cast. Not reachable from SQL; the partition
  /// analyzer's synthesized merge plans use it to restore count()'s int64
  /// output type after re-aggregating count partials with sum().
  kToInt64,
};

const char* BinaryOpToString(BinaryOp op);
const char* UnaryOpToString(UnaryOp op);
const char* ScalarFuncToString(ScalarFunc f);

/// SQL LIKE pattern match ('%' = any run, '_' = one char). Exposed for the
/// per-row evaluator and tests.
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Immutable, shareable scalar expression. Column references are positional:
/// the SQL binder resolves names to indices before execution.
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  /// Reference to input column `index`; `name` is kept for display only.
  /// Every factory takes an optional trailing source position (the SQL
  /// binder supplies it; C++-built expressions default to "unknown"), which
  /// the static analyzer threads into its diagnostics.
  static ExprPtr Column(size_t index, std::string name, DataType type,
                        SourceLoc loc = {});
  static ExprPtr Literal(Value v, SourceLoc loc = {});
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs,
                        SourceLoc loc = {});
  static ExprPtr Unary(UnaryOp op, ExprPtr operand, SourceLoc loc = {});
  static ExprPtr Function(ScalarFunc func, ExprPtr arg, SourceLoc loc = {});
  /// Searched CASE: children alternate (condition, value) pairs followed by
  /// the mandatory else value. All value branches must share a type (int64
  /// promotes to double when mixed with double).
  static Result<ExprPtr> Case(std::vector<ExprPtr> when_then,
                              ExprPtr else_value, SourceLoc loc = {});

  // Convenience builders for the common cases in tests and workloads.
  static ExprPtr Int(int64_t v) { return Literal(Value::Int64(v)); }
  static ExprPtr Real(double v) { return Literal(Value::Double(v)); }
  static ExprPtr Str(std::string v) {
    return Literal(Value::String(std::move(v)));
  }
  static ExprPtr Eq(ExprPtr a, ExprPtr b) {
    return Binary(BinaryOp::kEq, std::move(a), std::move(b));
  }
  static ExprPtr And(ExprPtr a, ExprPtr b) {
    return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
  }

  ExprKind kind() const { return kind_; }
  /// Result type; resolved at construction from operand types.
  DataType type() const { return type_; }
  /// SQL position this expression came from; invalid for C++-built trees.
  SourceLoc loc() const { return loc_; }

  // kColumnRef accessors.
  size_t column_index() const { return column_index_; }
  const std::string& column_name() const { return name_; }
  // kLiteral accessor.
  const Value& literal() const { return literal_; }
  // kBinary / kUnary accessors.
  BinaryOp binary_op() const { return bin_op_; }
  UnaryOp unary_op() const { return un_op_; }
  // kFunction accessor.
  ScalarFunc scalar_func() const { return func_; }
  // kCase accessors: children_ holds cond0,val0,cond1,val1,...,else.
  size_t num_when_branches() const { return (children_.size() - 1) / 2; }
  const ExprPtr& when_cond(size_t i) const { return children_[2 * i]; }
  const ExprPtr& when_value(size_t i) const { return children_[2 * i + 1]; }
  const ExprPtr& else_value() const { return children_.back(); }
  const ExprPtr& left() const { return children_[0]; }
  const ExprPtr& right() const { return children_[1]; }
  const ExprPtr& operand() const { return children_[0]; }

  /// SQL-ish rendering, e.g. "(a + 1) > 10".
  std::string ToString() const;

  /// True when the expression references no columns (constant under eval).
  bool IsConstant() const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  DataType type_ = DataType::kInt64;
  SourceLoc loc_;
  size_t column_index_ = 0;
  std::string name_;
  Value literal_;
  BinaryOp bin_op_ = BinaryOp::kAdd;
  UnaryOp un_op_ = UnaryOp::kNot;
  ScalarFunc func_ = ScalarFunc::kAbs;
  std::vector<ExprPtr> children_;
};

/// Evaluates `expr` over every row of `input`, producing a BAT of
/// `input.num_rows()` values. Arithmetic over a null yields null; comparisons
/// and logical ops treat null as false (simplified 3VL, documented in
/// DESIGN.md). Division by zero yields null.
Result<BatPtr> EvaluateExpr(const Expr& expr, const Table& input);

/// Evaluates a boolean-typed `expr` and returns the positions of rows where
/// it is true — the candidate-list form MonetDB's select primitive returns.
Result<std::vector<size_t>> EvaluatePredicate(const Expr& expr,
                                              const Table& input);

/// Folds a constant boolean predicate (no column references) to its truth
/// value under predicate semantics — a null result counts as false, exactly
/// as EvaluatePredicate would treat it per row. Returns nullopt when the
/// expression references columns, is not boolean, or fails to evaluate.
/// Used by the static analyzer (constant-predicate warning) and the plan
/// specializer (always-true/false filter elimination); both must agree.
std::optional<bool> TryFoldConstantPredicate(const Expr& expr);

}  // namespace datacell

#endif  // DATACELL_ALGEBRA_EXPRESSION_H_
