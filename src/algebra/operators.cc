#include "algebra/operators.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace datacell {

std::vector<size_t> SelectRangeInt64(const Bat& b, std::optional<int64_t> lo,
                                     std::optional<int64_t> hi) {
  DC_CHECK(IsIntegerBacked(b.type()));
  std::vector<size_t> out;
  const auto& data = b.int64_data();
  int64_t l = lo.value_or(std::numeric_limits<int64_t>::min());
  int64_t h = hi.value_or(std::numeric_limits<int64_t>::max());
  if (!b.has_nulls()) {
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i] >= l && data[i] <= h) out.push_back(i);
    }
  } else {
    for (size_t i = 0; i < data.size(); ++i) {
      if (!b.IsNull(i) && data[i] >= l && data[i] <= h) out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> SelectRangeDouble(const Bat& b, std::optional<double> lo,
                                      std::optional<double> hi) {
  DC_CHECK(b.type() == DataType::kDouble);
  std::vector<size_t> out;
  const auto& data = b.double_data();
  double l = lo.value_or(-std::numeric_limits<double>::infinity());
  double h = hi.value_or(std::numeric_limits<double>::infinity());
  if (!b.has_nulls()) {
    for (size_t i = 0; i < data.size(); ++i) {
      if (data[i] >= l && data[i] <= h) out.push_back(i);
    }
  } else {
    for (size_t i = 0; i < data.size(); ++i) {
      if (!b.IsNull(i) && data[i] >= l && data[i] <= h) out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> SelectEqString(const Bat& b, const std::string& v) {
  DC_CHECK(b.type() == DataType::kString);
  std::vector<size_t> out;
  const auto& data = b.string_data();
  for (size_t i = 0; i < data.size(); ++i) {
    if (!b.IsNull(i) && data[i] == v) out.push_back(i);
  }
  return out;
}

std::vector<size_t> IntersectPositions(const std::vector<size_t>& a,
                                       const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> UnionPositions(const std::vector<size_t>& a,
                                   const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<size_t> ComplementPositions(const std::vector<size_t>& a,
                                        size_t n) {
  std::vector<size_t> out;
  out.reserve(n - std::min(n, a.size()));
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    if (next < a.size() && a[next] == i) {
      ++next;
      continue;
    }
    out.push_back(i);
  }
  return out;
}

namespace {

/// Canonical hashable key for one value of `b` at position i. Strings get a
/// type-tag prefix so "1" and 1 never collide across group columns.
void AppendKeyBytes(const Bat& b, size_t i, std::string* key) {
  if (b.IsNull(i)) {
    key->push_back('\x00');
    return;
  }
  switch (b.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      key->push_back('\x01');
      int64_t v = b.Int64At(i);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      key->push_back('\x02');
      double v = b.DoubleAt(i);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kBool:
      key->push_back('\x03');
      key->push_back(b.BoolAt(i) ? 1 : 0);
      break;
    case DataType::kString: {
      key->push_back('\x04');
      const std::string& s = b.StringAt(i);
      uint32_t len = static_cast<uint32_t>(s.size());
      key->append(reinterpret_cast<const char*>(&len), sizeof(len));
      key->append(s);
      break;
    }
  }
}

}  // namespace

Result<JoinResult> HashJoin(const Bat& left_key, const Bat& right_key) {
  if (left_key.type() != right_key.type() &&
      !(IsIntegerBacked(left_key.type()) && IsIntegerBacked(right_key.type()))) {
    return Status::TypeError("join key type mismatch");
  }
  JoinResult out;
  // Build on the right side.
  std::unordered_map<std::string, std::vector<size_t>> build;
  build.reserve(right_key.size());
  std::string key;
  for (size_t i = 0; i < right_key.size(); ++i) {
    if (right_key.IsNull(i)) continue;
    key.clear();
    AppendKeyBytes(right_key, i, &key);
    build[key].push_back(i);
  }
  for (size_t i = 0; i < left_key.size(); ++i) {
    if (left_key.IsNull(i)) continue;
    key.clear();
    AppendKeyBytes(left_key, i, &key);
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      out.left_positions.push_back(i);
      out.right_positions.push_back(r);
    }
  }
  return out;
}

Result<Grouping> GroupBy(const Table& input,
                         const std::vector<size_t>& key_columns) {
  for (size_t c : key_columns) {
    if (c >= input.num_columns()) {
      return Status::Internal("group-by column index out of range");
    }
  }
  Grouping g;
  size_t n = input.num_rows();
  g.group_ids.resize(n);
  std::unordered_map<std::string, size_t> ids;
  ids.reserve(n);
  std::string key;
  for (size_t i = 0; i < n; ++i) {
    key.clear();
    for (size_t c : key_columns) {
      AppendKeyBytes(*input.column(c), i, &key);
    }
    auto [it, inserted] = ids.emplace(key, g.num_groups);
    if (inserted) {
      g.representatives.push_back(i);
      ++g.num_groups;
    }
    g.group_ids[i] = it->second;
  }
  return g;
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

Value AggPartial::Finalize(AggFunc f) const {
  switch (f) {
    case AggFunc::kCount:
      return Value::Int64(count);
    case AggFunc::kSum:
      return count == 0 ? Value::Null() : Value::Double(sum);
    case AggFunc::kMin:
      return count == 0 ? Value::Null() : Value::Double(min);
    case AggFunc::kMax:
      return count == 0 ? Value::Null() : Value::Double(max);
    case AggFunc::kAvg:
      return count == 0 ? Value::Null()
                        : Value::Double(sum / static_cast<double>(count));
  }
  return Value::Null();
}

namespace {

Status CheckAggregatable(const Bat& values) {
  if (!IsNumeric(values.type()) && values.type() != DataType::kBool) {
    return Status::TypeError(
        std::string("cannot aggregate values of type ") +
        DataTypeToString(values.type()));
  }
  return Status::OK();
}

inline double AggValueAt(const Bat& b, size_t i) {
  switch (b.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(b.Int64At(i));
    case DataType::kDouble:
      return b.DoubleAt(i);
    case DataType::kBool:
      return b.BoolAt(i) ? 1.0 : 0.0;
    default:
      DC_CHECK(false);
      return 0.0;
  }
}

}  // namespace

Result<std::vector<AggPartial>> AggregateByGroup(const Bat& values,
                                                 const Grouping& grouping) {
  DC_RETURN_NOT_OK(CheckAggregatable(values));
  if (values.size() != grouping.group_ids.size()) {
    return Status::Internal("aggregate input cardinality mismatch");
  }
  std::vector<AggPartial> partials(grouping.num_groups);
  for (size_t i = 0; i < values.size(); ++i) {
    if (values.IsNull(i)) continue;
    partials[grouping.group_ids[i]].AddValue(AggValueAt(values, i));
  }
  return partials;
}

Result<AggPartial> AggregateAll(const Bat& values,
                                const std::vector<size_t>* positions) {
  DC_RETURN_NOT_OK(CheckAggregatable(values));
  AggPartial p;
  if (positions == nullptr) {
    for (size_t i = 0; i < values.size(); ++i) {
      if (!values.IsNull(i)) p.AddValue(AggValueAt(values, i));
    }
  } else {
    for (size_t i : *positions) {
      if (!values.IsNull(i)) p.AddValue(AggValueAt(values, i));
    }
  }
  return p;
}

Result<std::vector<size_t>> SortPositions(const Table& input,
                                          const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    if (k.column >= input.num_columns()) {
      return Status::Internal("sort column index out of range");
    }
  }
  std::vector<size_t> perm(input.num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    for (const SortKey& k : keys) {
      const Bat& col = *input.column(k.column);
      Value va = col.GetValue(a);
      Value vb = col.GetValue(b);
      if (va < vb) return k.ascending;
      if (vb < va) return !k.ascending;
    }
    return false;
  });
  return perm;
}

std::vector<size_t> DistinctPositions(const Table& input) {
  std::vector<size_t> out;
  std::unordered_map<std::string, size_t> seen;
  std::string key;
  for (size_t i = 0; i < input.num_rows(); ++i) {
    key.clear();
    for (size_t c = 0; c < input.num_columns(); ++c) {
      AppendKeyBytes(*input.column(c), i, &key);
    }
    auto [it, inserted] = seen.emplace(key, i);
    if (inserted) out.push_back(i);
  }
  return out;
}

std::string EncodeRowKey(const Table& input, const std::vector<size_t>& columns,
                         size_t row) {
  std::string key;
  for (size_t c : columns) {
    AppendKeyBytes(*input.column(c), row, &key);
  }
  return key;
}

Result<std::vector<size_t>> TopN(const Table& input,
                                 const std::vector<SortKey>& keys, size_t n) {
  DC_ASSIGN_OR_RETURN(std::vector<size_t> perm, SortPositions(input, keys));
  if (perm.size() > n) perm.resize(n);
  return perm;
}

}  // namespace datacell
