#include "algebra/operators.h"

#include <algorithm>
#include <type_traits>
#include <unordered_map>

#include "algebra/kernels.h"
#include "common/check.h"

namespace datacell {

namespace {

/// Concatenates per-morsel position lists in morsel order, so the merged
/// list is identical to what one serial scan would have produced.
std::vector<size_t> MergePositionParts(std::vector<std::vector<size_t>> parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<size_t> out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

/// Branch-light range scan over [begin, end): the qualifying position is
/// written unconditionally and the cursor advances by the predicate result,
/// so the inner loop carries no hard-to-predict branch. `out` must have room
/// for end - begin entries; returns how many were written.
template <typename T>
size_t SelectRangeMorsel(const T* data, const Bat& b, T l, T h, size_t begin,
                         size_t end, size_t* out) {
  size_t k = 0;
  if (!b.has_nulls()) {
    // Null-free columns hit the raw-buffer kernels, which pick the AVX2
    // variant at runtime when the CPU has it.
    if constexpr (std::is_same_v<T, int64_t>) {
      return kernel::SelectRangeInt64(data, l, h, begin, end, out);
    } else if constexpr (std::is_same_v<T, double>) {
      return kernel::SelectRangeDouble(data, l, h, begin, end, out);
    } else {
      for (size_t i = begin; i < end; ++i) {
        out[k] = i;
        k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
      }
    }
  } else {
    for (size_t i = begin; i < end; ++i) {
      out[k] = i;
      k += static_cast<size_t>(!b.IsNull(i) && data[i] >= l && data[i] <= h);
    }
  }
  return k;
}

template <typename T>
std::vector<size_t> SelectRangeImpl(const Bat& b, const T* data, size_t n,
                                    T l, T h, const ExecContext& ctx) {
  std::vector<size_t> out;
  if (!ctx.ShouldParallelize(n)) {
    out.resize(n);  // one exact allocation instead of push_back growth
    out.resize(SelectRangeMorsel(data, b, l, h, 0, n, out.data()));
    return out;
  }
  size_t morsels = ctx.NumMorsels(n);
  ctx.CountMorsels(morsels);
  std::vector<std::vector<size_t>> parts(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    size_t begin = m * ctx.morsel_size;
    size_t end = std::min(n, begin + ctx.morsel_size);
    parts[m].resize(end - begin);
    parts[m].resize(SelectRangeMorsel(data, b, l, h, begin, end,
                                      parts[m].data()));
  });
  return MergePositionParts(std::move(parts));
}

}  // namespace

std::vector<size_t> SelectRangeInt64(const Bat& b, std::optional<int64_t> lo,
                                     std::optional<int64_t> hi,
                                     const ExecContext& ctx) {
  DC_CHECK(IsIntegerBacked(b.type()));
  const auto& data = b.int64_data();
  return SelectRangeImpl<int64_t>(
      b, data.data(), data.size(),
      lo.value_or(std::numeric_limits<int64_t>::min()),
      hi.value_or(std::numeric_limits<int64_t>::max()), ctx);
}

std::vector<size_t> SelectRangeDouble(const Bat& b, std::optional<double> lo,
                                      std::optional<double> hi,
                                      const ExecContext& ctx) {
  DC_CHECK(b.type() == DataType::kDouble);
  const auto& data = b.double_data();
  return SelectRangeImpl<double>(
      b, data.data(), data.size(),
      lo.value_or(-std::numeric_limits<double>::infinity()),
      hi.value_or(std::numeric_limits<double>::infinity()), ctx);
}

std::vector<size_t> SelectEqString(const Bat& b, const std::string& v,
                                   const ExecContext& ctx) {
  DC_CHECK(b.type() == DataType::kString);
  const auto& data = b.string_data();
  size_t n = data.size();
  auto scan = [&](size_t begin, size_t end, std::vector<size_t>* out) {
    for (size_t i = begin; i < end; ++i) {
      if (!b.IsNull(i) && data[i] == v) out->push_back(i);
    }
  };
  if (!ctx.ShouldParallelize(n)) {
    std::vector<size_t> out;
    // Equality on strings is usually selective; a modest reservation avoids
    // the early doubling copies without committing n * 8 bytes up front.
    out.reserve(n / 8 + 16);
    scan(0, n, &out);
    return out;
  }
  size_t morsels = ctx.NumMorsels(n);
  ctx.CountMorsels(morsels);
  std::vector<std::vector<size_t>> parts(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    size_t begin = m * ctx.morsel_size;
    size_t end = std::min(n, begin + ctx.morsel_size);
    parts[m].reserve((end - begin) / 8 + 16);
    scan(begin, end, &parts[m]);
  });
  return MergePositionParts(std::move(parts));
}

std::vector<size_t> IntersectPositions(const std::vector<size_t>& a,
                                       const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> UnionPositions(const std::vector<size_t>& a,
                                   const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<size_t> ComplementPositions(const std::vector<size_t>& a,
                                        size_t n) {
  std::vector<size_t> out;
  out.reserve(n - std::min(n, a.size()));
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    if (next < a.size() && a[next] == i) {
      ++next;
      continue;
    }
    out.push_back(i);
  }
  return out;
}

namespace {

/// Canonical hashable key for one value of `b` at position i. Strings get a
/// type-tag prefix so "1" and 1 never collide across group columns.
void AppendKeyBytes(const Bat& b, size_t i, std::string* key) {
  if (b.IsNull(i)) {
    key->push_back('\x00');
    return;
  }
  switch (b.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp: {
      key->push_back('\x01');
      int64_t v = b.Int64At(i);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kDouble: {
      key->push_back('\x02');
      double v = b.DoubleAt(i);
      key->append(reinterpret_cast<const char*>(&v), sizeof(v));
      break;
    }
    case DataType::kBool:
      key->push_back('\x03');
      key->push_back(b.BoolAt(i) ? 1 : 0);
      break;
    case DataType::kString: {
      key->push_back('\x04');
      const std::string& s = b.StringAt(i);
      uint32_t len = static_cast<uint32_t>(s.size());
      key->append(reinterpret_cast<const char*>(&len), sizeof(len));
      key->append(s);
      break;
    }
  }
}

}  // namespace

namespace {

/// Probes [begin, end) of `left_key` against the read-only build table.
void ProbeMorsel(const Bat& left_key,
                 const std::unordered_map<std::string, std::vector<size_t>>&
                     build,
                 size_t begin, size_t end, JoinResult* out) {
  std::string key;
  for (size_t i = begin; i < end; ++i) {
    if (left_key.IsNull(i)) continue;
    key.clear();
    AppendKeyBytes(left_key, i, &key);
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      out->left_positions.push_back(i);
      out->right_positions.push_back(r);
    }
  }
}

}  // namespace

Result<JoinResult> HashJoin(const Bat& left_key, const Bat& right_key,
                            const ExecContext& ctx) {
  if (left_key.type() != right_key.type() &&
      !(IsIntegerBacked(left_key.type()) && IsIntegerBacked(right_key.type()))) {
    return Status::TypeError("join key type mismatch");
  }
  // Build on the right side (serial: the hash table is written here, read
  // everywhere below).
  std::unordered_map<std::string, std::vector<size_t>> build;
  build.reserve(right_key.size());
  std::string key;
  for (size_t i = 0; i < right_key.size(); ++i) {
    if (right_key.IsNull(i)) continue;
    key.clear();
    AppendKeyBytes(right_key, i, &key);
    build[key].push_back(i);
  }
  size_t n = left_key.size();
  if (!ctx.ShouldParallelize(n)) {
    JoinResult out;
    ProbeMorsel(left_key, build, 0, n, &out);
    return out;
  }
  size_t morsels = ctx.NumMorsels(n);
  ctx.CountMorsels(morsels);
  std::vector<JoinResult> parts(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    size_t begin = m * ctx.morsel_size;
    size_t end = std::min(n, begin + ctx.morsel_size);
    ProbeMorsel(left_key, build, begin, end, &parts[m]);
  });
  size_t total = 0;
  for (const JoinResult& p : parts) total += p.left_positions.size();
  JoinResult out;
  out.left_positions.reserve(total);
  out.right_positions.reserve(total);
  for (JoinResult& p : parts) {
    out.left_positions.insert(out.left_positions.end(),
                              p.left_positions.begin(),
                              p.left_positions.end());
    out.right_positions.insert(out.right_positions.end(),
                               p.right_positions.begin(),
                               p.right_positions.end());
  }
  return out;
}

Result<Grouping> GroupBy(const Table& input,
                         const std::vector<size_t>& key_columns) {
  for (size_t c : key_columns) {
    if (c >= input.num_columns()) {
      return Status::Internal("group-by column index out of range");
    }
  }
  Grouping g;
  size_t n = input.num_rows();
  g.group_ids.resize(n);
  std::unordered_map<std::string, size_t> ids;
  ids.reserve(n);
  std::string key;
  for (size_t i = 0; i < n; ++i) {
    key.clear();
    for (size_t c : key_columns) {
      AppendKeyBytes(*input.column(c), i, &key);
    }
    auto [it, inserted] = ids.emplace(key, g.num_groups);
    if (inserted) {
      g.representatives.push_back(i);
      ++g.num_groups;
    }
    g.group_ids[i] = it->second;
  }
  return g;
}

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

Value AggPartial::Finalize(AggFunc f) const {
  switch (f) {
    case AggFunc::kCount:
      return Value::Int64(count);
    case AggFunc::kSum:
      return count == 0 ? Value::Null() : Value::Double(sum);
    case AggFunc::kMin:
      return count == 0 ? Value::Null() : Value::Double(min);
    case AggFunc::kMax:
      return count == 0 ? Value::Null() : Value::Double(max);
    case AggFunc::kAvg:
      return count == 0 ? Value::Null()
                        : Value::Double(sum / static_cast<double>(count));
  }
  return Value::Null();
}

namespace {

Status CheckAggregatable(const Bat& values) {
  if (!IsNumeric(values.type()) && values.type() != DataType::kBool) {
    return Status::TypeError(
        std::string("cannot aggregate values of type ") +
        DataTypeToString(values.type()));
  }
  return Status::OK();
}

inline double AggValueAt(const Bat& b, size_t i) {
  switch (b.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(b.Int64At(i));
    case DataType::kDouble:
      return b.DoubleAt(i);
    case DataType::kBool:
      return b.BoolAt(i) ? 1.0 : 0.0;
    default:
      DC_CHECK(false);
      return 0.0;
  }
}

}  // namespace

Result<std::vector<AggPartial>> AggregateByGroup(const Bat& values,
                                                 const Grouping& grouping,
                                                 const ExecContext& ctx) {
  DC_RETURN_NOT_OK(CheckAggregatable(values));
  if (values.size() != grouping.group_ids.size()) {
    return Status::Internal("aggregate input cardinality mismatch");
  }
  size_t n = values.size();
  auto accumulate = [&](size_t begin, size_t end,
                        std::vector<AggPartial>* partials) {
    for (size_t i = begin; i < end; ++i) {
      if (values.IsNull(i)) continue;
      (*partials)[grouping.group_ids[i]].AddValue(AggValueAt(values, i));
    }
  };
  // Per-morsel private partial vectors cost num_groups * morsels entries;
  // with very many groups the merge (and its memory) would swamp the scan,
  // so high-cardinality groupings stay serial.
  bool parallel = ctx.ShouldParallelize(n) &&
                  grouping.num_groups * ctx.NumMorsels(n) <= (1u << 22);
  if (!parallel) {
    std::vector<AggPartial> partials(grouping.num_groups);
    accumulate(0, n, &partials);
    return partials;
  }
  size_t morsels = ctx.NumMorsels(n);
  ctx.CountMorsels(morsels);
  std::vector<std::vector<AggPartial>> parts(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    size_t begin = m * ctx.morsel_size;
    size_t end = std::min(n, begin + ctx.morsel_size);
    parts[m].resize(grouping.num_groups);
    accumulate(begin, end, &parts[m]);
  });
  std::vector<AggPartial> partials = std::move(parts[0]);
  for (size_t m = 1; m < morsels; ++m) {
    for (size_t g = 0; g < grouping.num_groups; ++g) {
      partials[g].Merge(parts[m][g]);
    }
  }
  return partials;
}

Result<AggPartial> AggregateAll(const Bat& values,
                                const std::vector<size_t>* positions,
                                const ExecContext& ctx) {
  DC_RETURN_NOT_OK(CheckAggregatable(values));
  size_t n = positions == nullptr ? values.size() : positions->size();
  auto accumulate = [&](size_t begin, size_t end, AggPartial* p) {
    if (positions == nullptr) {
      for (size_t i = begin; i < end; ++i) {
        if (!values.IsNull(i)) p->AddValue(AggValueAt(values, i));
      }
    } else {
      for (size_t k = begin; k < end; ++k) {
        size_t i = (*positions)[k];
        if (!values.IsNull(i)) p->AddValue(AggValueAt(values, i));
      }
    }
  };
  if (!ctx.ShouldParallelize(n)) {
    AggPartial p;
    accumulate(0, n, &p);
    return p;
  }
  size_t morsels = ctx.NumMorsels(n);
  ctx.CountMorsels(morsels);
  std::vector<AggPartial> parts(morsels);
  ctx.pool->ParallelFor(morsels, [&](size_t m) {
    size_t begin = m * ctx.morsel_size;
    size_t end = std::min(n, begin + ctx.morsel_size);
    accumulate(begin, end, &parts[m]);
  });
  AggPartial p = parts[0];
  for (size_t m = 1; m < morsels; ++m) p.Merge(parts[m]);
  return p;
}

Result<std::vector<size_t>> SortPositions(const Table& input,
                                          const std::vector<SortKey>& keys) {
  for (const SortKey& k : keys) {
    if (k.column >= input.num_columns()) {
      return Status::Internal("sort column index out of range");
    }
  }
  std::vector<size_t> perm(input.num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    for (const SortKey& k : keys) {
      const Bat& col = *input.column(k.column);
      Value va = col.GetValue(a);
      Value vb = col.GetValue(b);
      if (va < vb) return k.ascending;
      if (vb < va) return !k.ascending;
    }
    return false;
  });
  return perm;
}

std::vector<size_t> DistinctPositions(const Table& input) {
  std::vector<size_t> out;
  std::unordered_map<std::string, size_t> seen;
  std::string key;
  for (size_t i = 0; i < input.num_rows(); ++i) {
    key.clear();
    for (size_t c = 0; c < input.num_columns(); ++c) {
      AppendKeyBytes(*input.column(c), i, &key);
    }
    auto [it, inserted] = seen.emplace(key, i);
    if (inserted) out.push_back(i);
  }
  return out;
}

std::string EncodeRowKey(const Table& input, const std::vector<size_t>& columns,
                         size_t row) {
  std::string key;
  for (size_t c : columns) {
    AppendKeyBytes(*input.column(c), row, &key);
  }
  return key;
}

Result<std::vector<size_t>> TopN(const Table& input,
                                 const std::vector<SortKey>& keys, size_t n) {
  DC_ASSIGN_OR_RETURN(std::vector<size_t> perm, SortPositions(input, keys));
  if (perm.size() > n) perm.resize(n);
  return perm;
}

}  // namespace datacell
