#include "algebra/plan.h"

#include <algorithm>

#include "common/check.h"

namespace datacell {

// Make* factories are friends of PlanNode, so they can reach the private
// constructor directly; `new` instead of make_shared keeps that access legal.
#define DC_NEW_PLAN_NODE() std::shared_ptr<PlanNode>(new PlanNode())

Result<PlanPtr> MakeScan(std::string relation, Schema schema) {
  if (relation.empty()) {
    return Status::InvalidArgument("scan relation name must not be empty");
  }
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kScan;
  n->scan_relation_ = std::move(relation);
  n->output_schema_ = std::move(schema);
  return PlanPtr(n);
}

Result<PlanPtr> MakeFilter(PlanPtr child, ExprPtr predicate) {
  if (child == nullptr || predicate == nullptr) {
    return Status::InvalidArgument("filter requires child and predicate");
  }
  if (predicate->type() != DataType::kBool) {
    return Status::TypeError("filter predicate must be boolean: " +
                             predicate->ToString());
  }
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kFilter;
  n->output_schema_ = child->output_schema();
  n->predicate_ = std::move(predicate);
  n->children_ = {std::move(child)};
  return PlanPtr(n);
}

Result<PlanPtr> MakeProject(PlanPtr child, std::vector<ExprPtr> projections,
                            std::vector<std::string> names) {
  if (child == nullptr || projections.empty() ||
      projections.size() != names.size()) {
    return Status::InvalidArgument(
        "project requires a child and matching expression/name lists");
  }
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kProject;
  Schema schema;
  for (size_t i = 0; i < projections.size(); ++i) {
    if (projections[i] == nullptr) {
      return Status::InvalidArgument("null projection expression");
    }
    schema.AddField(Field{names[i], projections[i]->type()});
  }
  n->output_schema_ = std::move(schema);
  n->projections_ = std::move(projections);
  n->children_ = {std::move(child)};
  return PlanPtr(n);
}

Result<PlanPtr> MakeHashJoin(PlanPtr left, PlanPtr right, size_t left_key,
                             size_t right_key) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("join requires two children");
  }
  if (left_key >= left->output_schema().num_fields() ||
      right_key >= right->output_schema().num_fields()) {
    return Status::InvalidArgument("join key column out of range");
  }
  DataType lt = left->output_schema().field(left_key).type;
  DataType rt = right->output_schema().field(right_key).type;
  if (lt != rt && !(IsIntegerBacked(lt) && IsIntegerBacked(rt))) {
    return Status::TypeError("join key type mismatch");
  }
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kHashJoin;
  Schema schema;
  for (const Field& f : left->output_schema().fields()) schema.AddField(f);
  for (const Field& f : right->output_schema().fields()) schema.AddField(f);
  n->output_schema_ = std::move(schema);
  n->left_key_ = left_key;
  n->right_key_ = right_key;
  n->children_ = {std::move(left), std::move(right)};
  return PlanPtr(n);
}

Result<PlanPtr> MakeAggregate(PlanPtr child, std::vector<size_t> group_columns,
                              std::vector<AggSpec> aggregates) {
  if (child == nullptr) return Status::InvalidArgument("aggregate needs child");
  if (aggregates.empty()) {
    return Status::InvalidArgument("aggregate needs at least one function");
  }
  const Schema& in = child->output_schema();
  Schema schema;
  for (size_t c : group_columns) {
    if (c >= in.num_fields()) {
      return Status::InvalidArgument("group column out of range");
    }
    schema.AddField(in.field(c));
  }
  for (AggSpec& a : aggregates) {
    if (!a.count_star && a.input_column >= in.num_fields()) {
      return Status::InvalidArgument("aggregate input column out of range");
    }
    if (a.output_name.empty()) {
      a.output_name = std::string(AggFuncToString(a.func)) + "_" +
                      (a.count_star ? "star" : in.field(a.input_column).name);
    }
    DataType t = a.func == AggFunc::kCount ? DataType::kInt64 : DataType::kDouble;
    schema.AddField(Field{a.output_name, t});
  }
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kAggregate;
  n->output_schema_ = std::move(schema);
  n->group_columns_ = std::move(group_columns);
  n->aggregates_ = std::move(aggregates);
  n->children_ = {std::move(child)};
  return PlanPtr(n);
}

Result<PlanPtr> MakeSort(PlanPtr child, std::vector<SortKey> keys) {
  if (child == nullptr || keys.empty()) {
    return Status::InvalidArgument("sort requires a child and keys");
  }
  for (const SortKey& k : keys) {
    if (k.column >= child->output_schema().num_fields()) {
      return Status::InvalidArgument("sort key column out of range");
    }
  }
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kSort;
  n->output_schema_ = child->output_schema();
  n->sort_keys_ = std::move(keys);
  n->children_ = {std::move(child)};
  return PlanPtr(n);
}

Result<PlanPtr> MakeDistinct(PlanPtr child) {
  if (child == nullptr) return Status::InvalidArgument("distinct needs child");
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kDistinct;
  n->output_schema_ = child->output_schema();
  n->children_ = {std::move(child)};
  return PlanPtr(n);
}

Result<PlanPtr> MakeLimit(PlanPtr child, size_t offset, size_t limit) {
  if (child == nullptr) return Status::InvalidArgument("limit needs child");
  if (limit == 0 && offset == 0) {
    return Status::InvalidArgument("limit 0 offset 0 is a no-op");
  }
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kLimit;
  n->output_schema_ = child->output_schema();
  n->offset_ = offset;
  n->limit_ = limit;
  n->children_ = {std::move(child)};
  return PlanPtr(n);
}

Result<PlanPtr> MakeUnion(PlanPtr left, PlanPtr right) {
  if (left == nullptr || right == nullptr) {
    return Status::InvalidArgument("union requires two children");
  }
  const Schema& ls = left->output_schema();
  const Schema& rs = right->output_schema();
  if (ls.num_fields() != rs.num_fields()) {
    return Status::TypeError("union arity mismatch");
  }
  for (size_t i = 0; i < ls.num_fields(); ++i) {
    if (ls.field(i).type != rs.field(i).type) {
      return Status::TypeError("union column type mismatch at position " +
                               std::to_string(i));
    }
  }
  auto n = DC_NEW_PLAN_NODE();
  n->kind_ = PlanKind::kUnion;
  n->output_schema_ = ls;
  n->children_ = {std::move(left), std::move(right)};
  return PlanPtr(n);
}

std::vector<std::string> PlanNode::InputRelations() const {
  std::vector<std::string> out;
  if (kind_ == PlanKind::kScan) out.push_back(scan_relation_);
  for (const PlanPtr& c : children_) {
    std::vector<std::string> sub = c->InputRelations();
    out.insert(out.end(), std::make_move_iterator(sub.begin()),
               std::make_move_iterator(sub.end()));
  }
  return out;
}

std::string PlanNode::Describe() const {
  switch (kind_) {
    case PlanKind::kScan:
      return "Scan(" + scan_relation_ + ")";
    case PlanKind::kFilter:
      return "Filter(" + predicate_->ToString() + ")";
    case PlanKind::kProject: {
      std::string s = "Project(";
      for (size_t i = 0; i < projections_.size(); ++i) {
        if (i > 0) s += ", ";
        s += projections_[i]->ToString() + " as " + output_schema_.field(i).name;
      }
      return s + ")";
    }
    case PlanKind::kHashJoin:
      return "HashJoin(left." +
             children_[0]->output_schema().field(left_key_).name + " = right." +
             children_[1]->output_schema().field(right_key_).name + ")";
    case PlanKind::kAggregate: {
      std::string s = "Aggregate(groups=[";
      for (size_t i = 0; i < group_columns_.size(); ++i) {
        if (i > 0) s += ", ";
        s += children_[0]->output_schema().field(group_columns_[i]).name;
      }
      s += "], aggs=[";
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (i > 0) s += ", ";
        s += AggFuncToString(aggregates_[i].func);
        s += "(";
        s += aggregates_[i].count_star
                 ? "*"
                 : children_[0]->output_schema().field(aggregates_[i].input_column).name;
        s += ")";
      }
      return s + "])";
    }
    case PlanKind::kSort: {
      std::string s = "Sort(";
      for (size_t i = 0; i < sort_keys_.size(); ++i) {
        if (i > 0) s += ", ";
        s += children_[0]->output_schema().field(sort_keys_[i].column).name;
        s += sort_keys_[i].ascending ? " asc" : " desc";
      }
      return s + ")";
    }
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kLimit:
      return "Limit(offset=" + std::to_string(offset_) +
             ", limit=" + std::to_string(limit_) + ")";
    case PlanKind::kUnion:
      return "Union";
  }
  return "?";
}

namespace {
void ToStringRec(const PlanNode& n, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(n.Describe());
  out->push_back('\n');
  for (const PlanPtr& c : n.children()) ToStringRec(*c, depth + 1, out);
}
}  // namespace

std::string PlanNode::ToString() const {
  std::string out;
  ToStringRec(*this, 0, &out);
  return out;
}

}  // namespace datacell
