#ifndef DATACELL_ALGEBRA_PROFILE_H_
#define DATACELL_ALGEBRA_PROFILE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

namespace datacell {

class PlanNode;

/// Nanosecond steady-clock reading for step timing. Only called on profiled
/// paths — the engine clock stays the single time source for stream
/// semantics; this one exists because per-step spans need sub-microsecond
/// resolution.
inline int64_t ProfileNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-step execution counters for one continuous query's pipeline — the
/// EXPLAIN-ANALYZE companion to the registration-time plan.
///
/// The step list is built once when the factory is created (one step per
/// specialized-pipeline stage, or one per interpreter plan node) and never
/// changes shape afterwards; only the atomic cells mutate. Writers are the
/// factory's exactly-once Fire(); readers (the shell's \profile, the metrics
/// refresh, the HTTP /queries endpoint) may run concurrently on other
/// threads, which relaxed atomics over an immutable structure make safe.
///
/// Gating follows the morsel-counter precedent (operators.h): execution code
/// sees only a nullable pointer in the ExecContext, so a disabled profiler
/// costs one pointer test per firing.
class PipelineProfile {
 public:
  static constexpr size_t kNoStep = static_cast<size_t>(-1);
  /// Marks rows_in as "not measured" — the renderer derives it from the
  /// child steps' output rows instead (interpreter nodes learn their input
  /// only through their children).
  static constexpr int64_t kRowsUnknown = -1;

  /// Registers a step; `depth` controls tree indentation in Render().
  /// Returns the step's index. Call only while building (single-threaded).
  size_t AddStep(std::string label, int depth);
  /// Associates a plan node with a step so the interpreter can find its slot
  /// during execution. Build-time only.
  void MapNode(const PlanNode* node, size_t step);
  size_t StepForNode(const PlanNode* node) const;

  /// Accumulates one execution of `step`. Thread-safe (relaxed atomics).
  void RecordStep(size_t step, int64_t rows_in, int64_t rows_out,
                  int64_t time_ns);
  /// Accumulates one whole factory firing (the denominator of "% of fire
  /// time" in Render()).
  void RecordFire(int64_t time_ns);

  /// Builds the interpreter profile: one step per plan node, preorder, with
  /// node mappings for StepForNode.
  static void FromPlan(const PlanNode& root, PipelineProfile* out);

  struct StepSnapshot {
    std::string label;
    int depth = 0;
    int64_t calls = 0;
    int64_t rows_in = 0;   // kRowsUnknown when the step never measured it
    int64_t rows_out = 0;
    int64_t time_ns = 0;
  };
  struct Snapshot {
    int64_t fires = 0;
    int64_t fire_time_ns = 0;
    std::vector<StepSnapshot> steps;
  };
  Snapshot Snap() const;

  size_t num_steps() const { return steps_.size(); }
  int64_t fires() const { return fires_.load(std::memory_order_relaxed); }

  /// EXPLAIN-ANALYZE-style table: one row per step (indented by depth) with
  /// calls, rows in/out, total time and share of the fire time. Derived
  /// rows_in (kRowsUnknown steps) come from the immediate children's output.
  std::string Render() const;

 private:
  struct Step {
    std::string label;
    int depth = 0;
    std::atomic<int64_t> calls{0};
    std::atomic<int64_t> rows_in{0};
    std::atomic<int64_t> rows_out{0};
    std::atomic<int64_t> time_ns{0};
    std::atomic<bool> rows_in_measured{false};
  };

  // deque: stable addresses across AddStep (atomics are not movable).
  std::deque<Step> steps_;
  std::unordered_map<const PlanNode*, size_t> node_steps_;
  std::atomic<int64_t> fires_{0};
  std::atomic<int64_t> fire_time_ns_{0};
};

}  // namespace datacell

#endif  // DATACELL_ALGEBRA_PROFILE_H_
