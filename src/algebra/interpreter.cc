#include <algorithm>
#include <optional>

#include "algebra/lowering.h"
#include "algebra/plan.h"
#include "algebra/profile.h"
#include "common/check.h"

namespace datacell {

namespace {

Result<TablePtr> Exec(const PlanNode& n, const PlanBindings& bindings,
                      const ExecContext& ctx);

Result<TablePtr> ExecScan(const PlanNode& n, const PlanBindings& bindings) {
  auto it = bindings.find(n.scan_relation());
  if (it == bindings.end()) {
    return Status::NotFound("no binding for relation '" + n.scan_relation() +
                            "'");
  }
  const TablePtr& t = it->second;
  if (t->num_columns() != n.output_schema().num_fields()) {
    return Status::Internal("bound relation '" + n.scan_relation() +
                            "' arity differs from plan schema");
  }
  return t;
}

/// The selection vector of `n` (a filter node) over `in`: lowered kernel
/// path when the predicate fits (rules shared with the plan specializer in
/// lowering.h), generic evaluation otherwise.
Result<std::vector<size_t>> FilterPositions(const PlanNode& n, const Table& in,
                                            const ExecContext& ctx) {
  if (auto lowered = TryLowerSelect(*n.predicate(), in.schema())) {
    return RunLoweredSelect(*lowered, in, ctx);
  }
  return EvaluatePredicate(*n.predicate(), in);
}

/// FilterPositions with the filter node's profile step recorded. The fused
/// select→project and select→aggregate paths bypass Exec() for the filter
/// child, so its step would otherwise show zero activity on exactly the
/// plans where the filter matters most.
Result<std::vector<size_t>> ProfiledFilterPositions(const PlanNode& n,
                                                    const Table& in,
                                                    const ExecContext& ctx) {
  if (ctx.profile == nullptr) return FilterPositions(n, in, ctx);
  size_t step = ctx.profile->StepForNode(&n);
  int64_t t0 = ProfileNowNs();
  Result<std::vector<size_t>> r = FilterPositions(n, in, ctx);
  if (r.ok() && step != PipelineProfile::kNoStep) {
    ctx.profile->RecordStep(step, static_cast<int64_t>(in.num_rows()),
                            static_cast<int64_t>(r->size()),
                            ProfileNowNs() - t0);
  }
  return r;
}

Result<TablePtr> ExecFilter(const PlanNode& n, const PlanBindings& bindings,
                            const ExecContext& ctx) {
  DC_ASSIGN_OR_RETURN(TablePtr in, Exec(*n.child(), bindings, ctx));
  DC_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                      FilterPositions(n, *in, ctx));
  if (positions.size() == in->num_rows()) return in;  // nothing filtered out
  return TablePtr(in->Take(positions));
}

Result<TablePtr> ExecProject(const PlanNode& n, const PlanBindings& bindings,
                             const ExecContext& ctx) {
  // Fused select→project: when the child is a filter and every projection is
  // a plain column ref, the selection vector drives a direct gather from the
  // filter's own input — the intermediate filtered table (all its columns,
  // projected or not) is never materialised.
  const PlanNode& child = *n.child();
  if (child.kind() == PlanKind::kFilter) {
    bool all_column_refs = true;
    for (const ExprPtr& e : n.projections()) {
      if (e->kind() != ExprKind::kColumnRef) {
        all_column_refs = false;
        break;
      }
    }
    if (all_column_refs) {
      DC_ASSIGN_OR_RETURN(TablePtr in, Exec(*child.child(), bindings, ctx));
      DC_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                          ProfiledFilterPositions(child, *in, ctx));
      auto out = std::make_shared<Table>("", n.output_schema());
      for (size_t i = 0; i < n.projections().size(); ++i) {
        out->column(i)->AppendPositions(
            *in->column(n.projections()[i]->column_index()), positions);
      }
      return out;
    }
  }
  DC_ASSIGN_OR_RETURN(TablePtr in, Exec(child, bindings, ctx));
  auto out = std::make_shared<Table>("", n.output_schema());
  for (size_t i = 0; i < n.projections().size(); ++i) {
    DC_ASSIGN_OR_RETURN(BatPtr col, EvaluateExpr(*n.projections()[i], *in));
    // EvaluateExpr may return a shared input column (zero-copy column ref);
    // the projected output aliases it, which is safe because results are
    // never mutated in place.
    out->column(i)->AppendBat(*col);
  }
  return out;
}

Result<TablePtr> ExecHashJoin(const PlanNode& n, const PlanBindings& bindings,
                              const ExecContext& ctx) {
  DC_ASSIGN_OR_RETURN(TablePtr left, Exec(*n.child(0), bindings, ctx));
  DC_ASSIGN_OR_RETURN(TablePtr right, Exec(*n.child(1), bindings, ctx));
  DC_ASSIGN_OR_RETURN(JoinResult jr,
                      HashJoin(*left->column(n.left_key()),
                               *right->column(n.right_key()), ctx));
  auto out = std::make_shared<Table>("", n.output_schema());
  size_t lcols = left->num_columns();
  for (size_t c = 0; c < lcols; ++c) {
    out->column(c)->AppendPositions(*left->column(c), jr.left_positions);
  }
  for (size_t c = 0; c < right->num_columns(); ++c) {
    out->column(lcols + c)->AppendPositions(*right->column(c),
                                            jr.right_positions);
  }
  return out;
}

Result<TablePtr> ExecAggregate(const PlanNode& n, const PlanBindings& bindings,
                               const ExecContext& ctx) {
  // Fused select→aggregate (scalar aggregates only): the filter's selection
  // vector feeds AggregateAll's position-list mode directly; the filtered
  // table is never materialised and count(*) is just the vector's length.
  // The planner compiles `select agg(col) .. where ..` as
  // Aggregate→Project→Filter where the pre-projection only renames columns
  // (pure column refs), so the fusion sees through such a projection and
  // reads the aggregate inputs straight from the filter's own input.
  const PlanNode& agg_child = *n.child();
  const PlanNode* pre = nullptr;     // column-ref-only projection, if any
  const PlanNode* filter = nullptr;  // the filter feeding the aggregate
  if (agg_child.kind() == PlanKind::kFilter) {
    filter = &agg_child;
  } else if (agg_child.kind() == PlanKind::kProject &&
             agg_child.child()->kind() == PlanKind::kFilter) {
    bool refs_only = true;
    for (const AggSpec& a : n.aggregates()) {
      if (!a.count_star && agg_child.projections()[a.input_column]->kind() !=
                               ExprKind::kColumnRef) {
        refs_only = false;
        break;
      }
    }
    if (refs_only) {
      pre = &agg_child;
      filter = agg_child.child().get();
    }
  }
  if (n.group_columns().empty() && filter != nullptr) {
    DC_ASSIGN_OR_RETURN(TablePtr in, Exec(*filter->child(), bindings, ctx));
    DC_ASSIGN_OR_RETURN(std::vector<size_t> positions,
                        ProfiledFilterPositions(*filter, *in, ctx));
    auto out = std::make_shared<Table>("", n.output_schema());
    Row row;
    for (const AggSpec& a : n.aggregates()) {
      AggPartial p;
      if (a.count_star) {
        p.count = static_cast<int64_t>(positions.size());
      } else {
        size_t col = pre != nullptr
                         ? pre->projections()[a.input_column]->column_index()
                         : a.input_column;
        DC_ASSIGN_OR_RETURN(p, AggregateAll(*in->column(col), &positions, ctx));
      }
      row.push_back(p.Finalize(a.func));
    }
    DC_RETURN_NOT_OK(out->AppendRow(row));
    return out;
  }
  DC_ASSIGN_OR_RETURN(TablePtr in, Exec(*n.child(), bindings, ctx));
  auto out = std::make_shared<Table>("", n.output_schema());
  if (n.group_columns().empty()) {
    // Scalar aggregate: exactly one output row, even for empty input.
    Row row;
    for (const AggSpec& a : n.aggregates()) {
      AggPartial p;
      if (a.count_star) {
        p.count = static_cast<int64_t>(in->num_rows());
        // sum/min/max not meaningful for count(*); Finalize(kCount) is used.
      } else {
        DC_ASSIGN_OR_RETURN(
            p, AggregateAll(*in->column(a.input_column), nullptr, ctx));
      }
      row.push_back(p.Finalize(a.func));
    }
    DC_RETURN_NOT_OK(out->AppendRow(row));
    return out;
  }
  DC_ASSIGN_OR_RETURN(Grouping grouping, GroupBy(*in, n.group_columns()));
  // Group key columns: one value per group, from the representative row.
  size_t col = 0;
  for (size_t gc : n.group_columns()) {
    out->column(col)->AppendPositions(*in->column(gc),
                                      grouping.representatives);
    ++col;
  }
  for (const AggSpec& a : n.aggregates()) {
    BatPtr dst = out->column(col);
    if (a.count_star) {
      std::vector<int64_t> counts(grouping.num_groups, 0);
      for (size_t g : grouping.group_ids) ++counts[g];
      for (int64_t c : counts) dst->AppendInt64(c);
    } else {
      DC_ASSIGN_OR_RETURN(
          std::vector<AggPartial> partials,
          AggregateByGroup(*in->column(a.input_column), grouping, ctx));
      for (const AggPartial& p : partials) {
        DC_RETURN_NOT_OK(dst->AppendValue(p.Finalize(a.func)));
      }
    }
    ++col;
  }
  return out;
}

Result<TablePtr> ExecSort(const PlanNode& n, const PlanBindings& bindings,
                          const ExecContext& ctx) {
  DC_ASSIGN_OR_RETURN(TablePtr in, Exec(*n.child(), bindings, ctx));
  DC_ASSIGN_OR_RETURN(std::vector<size_t> perm,
                      SortPositions(*in, n.sort_keys()));
  return TablePtr(in->Take(perm));
}

Result<TablePtr> ExecDistinct(const PlanNode& n, const PlanBindings& bindings,
                              const ExecContext& ctx) {
  DC_ASSIGN_OR_RETURN(TablePtr in, Exec(*n.child(), bindings, ctx));
  std::vector<size_t> positions = DistinctPositions(*in);
  if (positions.size() == in->num_rows()) return in;
  return TablePtr(in->Take(positions));
}

Result<TablePtr> ExecLimit(const PlanNode& n, const PlanBindings& bindings,
                           const ExecContext& ctx) {
  DC_ASSIGN_OR_RETURN(TablePtr in, Exec(*n.child(), bindings, ctx));
  size_t offset = std::min(n.offset(), in->num_rows());
  size_t length = std::min(n.limit(), in->num_rows() - offset);
  if (offset == 0 && length == in->num_rows()) return in;
  return TablePtr(in->Slice(offset, length));
}

Result<TablePtr> ExecUnion(const PlanNode& n, const PlanBindings& bindings,
                           const ExecContext& ctx) {
  DC_ASSIGN_OR_RETURN(TablePtr left, Exec(*n.child(0), bindings, ctx));
  DC_ASSIGN_OR_RETURN(TablePtr right, Exec(*n.child(1), bindings, ctx));
  auto out = std::make_shared<Table>("", n.output_schema());
  DC_RETURN_NOT_OK(out->AppendTable(*left));
  DC_RETURN_NOT_OK(out->AppendTable(*right));
  return out;
}

Result<TablePtr> ExecNode(const PlanNode& n, const PlanBindings& bindings,
                          const ExecContext& ctx) {
  switch (n.kind()) {
    case PlanKind::kScan:
      return ExecScan(n, bindings);
    case PlanKind::kFilter:
      return ExecFilter(n, bindings, ctx);
    case PlanKind::kProject:
      return ExecProject(n, bindings, ctx);
    case PlanKind::kHashJoin:
      return ExecHashJoin(n, bindings, ctx);
    case PlanKind::kAggregate:
      return ExecAggregate(n, bindings, ctx);
    case PlanKind::kSort:
      return ExecSort(n, bindings, ctx);
    case PlanKind::kDistinct:
      return ExecDistinct(n, bindings, ctx);
    case PlanKind::kLimit:
      return ExecLimit(n, bindings, ctx);
    case PlanKind::kUnion:
      return ExecUnion(n, bindings, ctx);
  }
  return Status::Internal("bad plan kind");
}

/// Dispatch wrapper: with a profile in the context, every node's inclusive
/// time and output rows accumulate into its step. Input rows are derived at
/// render time from the children — this wrapper never sees them.
Result<TablePtr> Exec(const PlanNode& n, const PlanBindings& bindings,
                      const ExecContext& ctx) {
  if (ctx.profile == nullptr) return ExecNode(n, bindings, ctx);
  size_t step = ctx.profile->StepForNode(&n);
  if (step == PipelineProfile::kNoStep) return ExecNode(n, bindings, ctx);
  int64_t t0 = ProfileNowNs();
  Result<TablePtr> r = ExecNode(n, bindings, ctx);
  if (r.ok()) {
    ctx.profile->RecordStep(step, PipelineProfile::kRowsUnknown,
                            static_cast<int64_t>((*r)->num_rows()),
                            ProfileNowNs() - t0);
  }
  return r;
}

int ExplainRec(const PlanNode& n, int* next_var, std::string* out) {
  std::vector<int> child_vars;
  for (const PlanPtr& c : n.children()) {
    child_vars.push_back(ExplainRec(*c, next_var, out));
  }
  int var = (*next_var)++;
  auto emit = [&](const std::string& rhs) {
    *out += "X_" + std::to_string(var) + " := " + rhs + ";\n";
  };
  auto cv = [&](size_t i) { return "X_" + std::to_string(child_vars[i]); };
  switch (n.kind()) {
    case PlanKind::kScan:
      emit("basket.bind(\"" + n.scan_relation() + "\")");
      break;
    case PlanKind::kFilter:
      emit("algebra.select(" + cv(0) + ", " + n.predicate()->ToString() + ")");
      break;
    case PlanKind::kProject: {
      std::string rhs = "batcalc.project(" + cv(0);
      for (const ExprPtr& e : n.projections()) rhs += ", " + e->ToString();
      emit(rhs + ")");
      break;
    }
    case PlanKind::kHashJoin:
      emit("algebra.join(" + cv(0) + ", " + cv(1) + ")");
      break;
    case PlanKind::kAggregate: {
      std::string rhs = "aggr.group(" + cv(0);
      for (const AggSpec& a : n.aggregates()) {
        rhs += std::string(", ") + AggFuncToString(a.func);
      }
      emit(rhs + ")");
      break;
    }
    case PlanKind::kSort:
      emit("algebra.sort(" + cv(0) + ")");
      break;
    case PlanKind::kDistinct:
      emit("algebra.unique(" + cv(0) + ")");
      break;
    case PlanKind::kLimit:
      emit("algebra.slice(" + cv(0) + ", " + std::to_string(n.offset()) + ", " +
           std::to_string(n.limit()) + ")");
      break;
    case PlanKind::kUnion:
      emit("bat.union(" + cv(0) + ", " + cv(1) + ")");
      break;
  }
  return var;
}

}  // namespace

Result<TablePtr> ExecutePlan(const PlanNode& plan, const PlanBindings& bindings,
                             const ExecContext& ctx) {
  return Exec(plan, bindings, ctx);
}

Result<TablePtr> ExecutePlan(const PlanNode& plan,
                             const PlanBindings& bindings) {
  return Exec(plan, bindings, ExecContext{});
}

std::string ExplainMal(const PlanNode& plan) {
  std::string out;
  int next_var = 0;
  ExplainRec(plan, &next_var, &out);
  return out;
}

}  // namespace datacell
