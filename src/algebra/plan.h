#ifndef DATACELL_ALGEBRA_PLAN_H_
#define DATACELL_ALGEBRA_PLAN_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/expression.h"
#include "algebra/operators.h"
#include "storage/table.h"

namespace datacell {

/// Physical plan node kinds. A plan is the compiled form of a (continuous)
/// query; a DataCell factory wraps one plan plus the basket plumbing. The
/// tree corresponds 1:1 to the linear MAL program MonetDB would produce —
/// `ExplainMal()` renders that correspondence.
enum class PlanKind {
  kScan,       // read a bound input relation by name
  kFilter,     // positions := predicate(child); project child
  kProject,    // per-row expressions -> new columns
  kHashJoin,   // equi-join of two children on one key column each
  kAggregate,  // optional group-by + aggregate functions
  kSort,       // order by
  kDistinct,   // duplicate elimination on the full row
  kLimit,      // offset/limit
  kUnion,      // bag union of two schema-compatible children
};

/// One aggregate computation: `func` applied to child column
/// `input_column` (ignored for count(*), flagged by `count_star`).
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  size_t input_column = 0;
  bool count_star = false;
  std::string output_name;
};

class PlanNode;
using PlanPtr = std::shared_ptr<const PlanNode>;

/// Immutable physical plan node. Construct through the Make* factories,
/// which validate inputs and infer the output schema.
class PlanNode {
 public:
  PlanKind kind() const { return kind_; }
  const Schema& output_schema() const { return output_schema_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  const PlanPtr& child(size_t i = 0) const { return children_[i]; }

  // kScan
  const std::string& scan_relation() const { return scan_relation_; }
  // kFilter
  const ExprPtr& predicate() const { return predicate_; }
  // kProject
  const std::vector<ExprPtr>& projections() const { return projections_; }
  // kHashJoin
  size_t left_key() const { return left_key_; }
  size_t right_key() const { return right_key_; }
  // kAggregate
  const std::vector<size_t>& group_columns() const { return group_columns_; }
  const std::vector<AggSpec>& aggregates() const { return aggregates_; }
  // kSort
  const std::vector<SortKey>& sort_keys() const { return sort_keys_; }
  // kLimit
  size_t limit() const { return limit_; }
  size_t offset() const { return offset_; }

  /// Every kScan relation name in the subtree, in visit order.
  std::vector<std::string> InputRelations() const;

  /// Single-line operator description, e.g. "Filter((a > 10))".
  std::string Describe() const;

  /// Multi-line indented tree rendering.
  std::string ToString() const;

 private:
  PlanNode() = default;
  friend Result<PlanPtr> MakeScan(std::string relation, Schema schema);
  friend Result<PlanPtr> MakeFilter(PlanPtr child, ExprPtr predicate);
  friend Result<PlanPtr> MakeProject(PlanPtr child,
                                     std::vector<ExprPtr> projections,
                                     std::vector<std::string> names);
  friend Result<PlanPtr> MakeHashJoin(PlanPtr left, PlanPtr right,
                                      size_t left_key, size_t right_key);
  friend Result<PlanPtr> MakeAggregate(PlanPtr child,
                                       std::vector<size_t> group_columns,
                                       std::vector<AggSpec> aggregates);
  friend Result<PlanPtr> MakeSort(PlanPtr child, std::vector<SortKey> keys);
  friend Result<PlanPtr> MakeDistinct(PlanPtr child);
  friend Result<PlanPtr> MakeLimit(PlanPtr child, size_t offset, size_t limit);
  friend Result<PlanPtr> MakeUnion(PlanPtr left, PlanPtr right);

  PlanKind kind_ = PlanKind::kScan;
  Schema output_schema_;
  std::vector<PlanPtr> children_;
  std::string scan_relation_;
  ExprPtr predicate_;
  std::vector<ExprPtr> projections_;
  size_t left_key_ = 0;
  size_t right_key_ = 0;
  std::vector<size_t> group_columns_;
  std::vector<AggSpec> aggregates_;
  std::vector<SortKey> sort_keys_;
  size_t limit_ = 0;
  size_t offset_ = 0;
};

/// Leaf: reads the relation bound to `relation` at execution time. `schema`
/// fixes the expected column layout (checked at execution).
Result<PlanPtr> MakeScan(std::string relation, Schema schema);
Result<PlanPtr> MakeFilter(PlanPtr child, ExprPtr predicate);
/// `names[i]` is the output column name of `projections[i]`.
Result<PlanPtr> MakeProject(PlanPtr child, std::vector<ExprPtr> projections,
                            std::vector<std::string> names);
/// Output schema = left columns followed by right columns.
Result<PlanPtr> MakeHashJoin(PlanPtr left, PlanPtr right, size_t left_key,
                             size_t right_key);
/// Output schema = group columns (child names) then one column per AggSpec.
/// With no group columns the result is exactly one row.
Result<PlanPtr> MakeAggregate(PlanPtr child, std::vector<size_t> group_columns,
                              std::vector<AggSpec> aggregates);
Result<PlanPtr> MakeSort(PlanPtr child, std::vector<SortKey> keys);
Result<PlanPtr> MakeDistinct(PlanPtr child);
/// limit == 0 with offset == 0 is rejected (use the child directly);
/// limit == SIZE_MAX means "no limit, offset only".
Result<PlanPtr> MakeLimit(PlanPtr child, size_t offset, size_t limit);
Result<PlanPtr> MakeUnion(PlanPtr left, PlanPtr right);

/// Input relations bound at execution time (baskets or tables).
using PlanBindings = std::map<std::string, TablePtr>;

/// Executes `plan` against `bindings`; returns a fresh result table. Pure:
/// never mutates the inputs (consumption is the *factory's* job, per the
/// paper's separation between plan execution and basket management).
/// `ctx` carries the intra-operator parallelism knobs (see ExecContext);
/// the default context runs everything scalar. Filter predicates of the
/// form `column <cmp> literal` (and conjunctions of two such on one column)
/// are lowered to the Select* kernels, which both skips the generic
/// expression evaluator and picks up morsel parallelism.
Result<TablePtr> ExecutePlan(const PlanNode& plan, const PlanBindings& bindings,
                             const ExecContext& ctx);
Result<TablePtr> ExecutePlan(const PlanNode& plan, const PlanBindings& bindings);

/// Renders `plan` as the equivalent MAL program, e.g.
///   X_0 := basket.bind("R");
///   X_1 := algebra.select(X_0, (a > 10));
/// Mirrors the paper's Algorithm 1 for explain/debug output.
std::string ExplainMal(const PlanNode& plan);

}  // namespace datacell

#endif  // DATACELL_ALGEBRA_PLAN_H_
