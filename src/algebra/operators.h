#ifndef DATACELL_ALGEBRA_OPERATORS_H_
#define DATACELL_ALGEBRA_OPERATORS_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "storage/bat.h"
#include "storage/table.h"

namespace datacell {

/// Bulk relational primitives over BATs — the "highly optimized relational
/// primitives" each MAL operator wraps. They return candidate position
/// lists or fresh BATs; they never mutate their inputs.

// --- Execution context ---------------------------------------------------

/// Knobs threaded from the engine into the bulk kernels. With a pool set,
/// kernels over inputs of at least `parallel_threshold` values split the
/// input into fixed-size morsels, fan them across the pool (the calling
/// thread participates) and merge the per-morsel results in input order —
/// position lists and join pairs come back identical to the scalar ones
/// (floating-point aggregate sums may differ in rounding, as partial sums
/// associate differently). Small inputs — the common per-firing basket
/// slice — never pay the fan-out overhead: they stay on the scalar path.
struct ExecContext {
  ThreadPool* pool = nullptr;
  /// Inputs smaller than this never parallelize (fan-out costs more than it
  /// saves on small baskets).
  size_t parallel_threshold = 128 * 1024;
  /// Values per morsel (~64K: a few L2-sized chunks per worker even at the
  /// threshold, so claiming stays self-balancing).
  size_t morsel_size = 64 * 1024;

  bool ShouldParallelize(size_t n) const {
    return pool != nullptr && pool->num_threads() > 0 &&
           n >= parallel_threshold && n > morsel_size;
  }
  size_t NumMorsels(size_t n) const {
    return (n + morsel_size - 1) / morsel_size;
  }
  /// Observability: morsels dispatched by the parallel kernels accumulate
  /// here when set. A raw atomic (not a registry Counter) keeps the kernel
  /// layer free of metric types; the engine points it at its registry cell.
  std::atomic<int64_t>* morsel_counter = nullptr;
  void CountMorsels(size_t n) const {
    if (morsel_counter != nullptr) {
      morsel_counter->fetch_add(static_cast<int64_t>(n),
                                std::memory_order_relaxed);
    }
  }
  /// Per-step pipeline profiler (algebra/profile.h). Null — the default —
  /// disables profiling: like morsel_counter, executors pay one pointer test
  /// per step. The factory points this at its profile while profiling is on.
  class PipelineProfile* profile = nullptr;
};

// --- Selection ------------------------------------------------------------

/// Positions i where lo <= b[i] <= hi (null positions never qualify).
/// Bounds are inclusive; pass nullopt for an open end. This is the
/// monetdb.select(input, v1, v2) of the paper's Algorithm 1.
std::vector<size_t> SelectRangeInt64(const Bat& b, std::optional<int64_t> lo,
                                     std::optional<int64_t> hi,
                                     const ExecContext& ctx = {});
std::vector<size_t> SelectRangeDouble(const Bat& b, std::optional<double> lo,
                                      std::optional<double> hi,
                                      const ExecContext& ctx = {});
/// Positions where b[i] == v.
std::vector<size_t> SelectEqString(const Bat& b, const std::string& v,
                                   const ExecContext& ctx = {});

/// Intersects two sorted position lists (conjunctive selections).
std::vector<size_t> IntersectPositions(const std::vector<size_t>& a,
                                       const std::vector<size_t>& b);
/// Unions two sorted position lists (disjunctive selections).
std::vector<size_t> UnionPositions(const std::vector<size_t>& a,
                                   const std::vector<size_t>& b);
/// Complement of a sorted position list against [0, n).
std::vector<size_t> ComplementPositions(const std::vector<size_t>& a, size_t n);

// --- Join -------------------------------------------------------------

/// Equi-join on one key column per side. Returns aligned position pairs
/// (left_positions[i], right_positions[i]) for every match; build side is
/// the right input (hash join). Nulls never join. The build stays serial;
/// with a pool in `ctx` the probe side fans out in morsels over the
/// read-only hash table.
struct JoinResult {
  std::vector<size_t> left_positions;
  std::vector<size_t> right_positions;
};
Result<JoinResult> HashJoin(const Bat& left_key, const Bat& right_key,
                            const ExecContext& ctx = {});

// --- Grouping & aggregation -------------------------------------------

/// Assigns each row a dense group id by the combined value of `key_columns`
/// (hash grouping). `representatives[g]` is the first row of group g.
struct Grouping {
  std::vector<size_t> group_ids;        // size = num input rows
  std::vector<size_t> representatives;  // size = num groups
  size_t num_groups = 0;
};
Result<Grouping> GroupBy(const Table& input,
                         const std::vector<size_t>& key_columns);

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncToString(AggFunc f);

/// Decomposable aggregate state: mergeable partials, the basis of the
/// incremental (basic-window) evaluation mode of §3.1. Covers count, sum,
/// avg (= sum/count); min/max are kept but are only *insert*-decomposable —
/// merging is fine, subtracting an expired sub-window is not, which is
/// exactly why the basic-window model re-combines per-sub-window summaries
/// instead of subtracting.
struct AggPartial {
  int64_t count = 0;    // non-null inputs
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void AddValue(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void Merge(const AggPartial& o) {
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  /// Extracts the final value for `f`; returns null for empty input
  /// (except count, which is 0).
  Value Finalize(AggFunc f) const;
};

/// Aggregates `values` grouped by `grouping`; `values` may be any numeric
/// BAT (count also accepts strings). Returns one partial per group. With a
/// pool in `ctx`, morsels accumulate private per-group partial vectors that
/// are merged pairwise (AggPartial::Merge) — the decomposability that makes
/// the incremental window mode work also makes the kernel parallel.
Result<std::vector<AggPartial>> AggregateByGroup(const Bat& values,
                                                 const Grouping& grouping,
                                                 const ExecContext& ctx = {});
/// Aggregate over all rows (single group), optionally restricted to
/// `positions` (pass nullptr for all).
Result<AggPartial> AggregateAll(const Bat& values,
                                const std::vector<size_t>* positions,
                                const ExecContext& ctx = {});

// --- Ordering ---------------------------------------------------------

struct SortKey {
  size_t column = 0;
  bool ascending = true;
};

/// Stable sort: returns the permutation of row positions that orders
/// `input` by `keys`.
Result<std::vector<size_t>> SortPositions(const Table& input,
                                          const std::vector<SortKey>& keys);

/// Positions of the first occurrence of each distinct full row.
std::vector<size_t> DistinctPositions(const Table& input);

/// Canonical byte encoding of row `row`'s values in `columns` — equal rows
/// encode equal, across tables with the same column types. Used to merge
/// per-basic-window group summaries in the incremental window executor.
std::string EncodeRowKey(const Table& input, const std::vector<size_t>& columns,
                         size_t row);

/// First `n` positions after sorting (top-n without full materialisation of
/// the sorted table).
Result<std::vector<size_t>> TopN(const Table& input,
                                 const std::vector<SortKey>& keys, size_t n);

}  // namespace datacell

#endif  // DATACELL_ALGEBRA_OPERATORS_H_
