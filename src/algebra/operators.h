#ifndef DATACELL_ALGEBRA_OPERATORS_H_
#define DATACELL_ALGEBRA_OPERATORS_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/bat.h"
#include "storage/table.h"

namespace datacell {

/// Bulk relational primitives over BATs — the "highly optimized relational
/// primitives" each MAL operator wraps. They return candidate position
/// lists or fresh BATs; they never mutate their inputs.

// --- Selection ------------------------------------------------------------

/// Positions i where lo <= b[i] <= hi (null positions never qualify).
/// Bounds are inclusive; pass nullopt for an open end. This is the
/// monetdb.select(input, v1, v2) of the paper's Algorithm 1.
std::vector<size_t> SelectRangeInt64(const Bat& b, std::optional<int64_t> lo,
                                     std::optional<int64_t> hi);
std::vector<size_t> SelectRangeDouble(const Bat& b, std::optional<double> lo,
                                      std::optional<double> hi);
/// Positions where b[i] == v.
std::vector<size_t> SelectEqString(const Bat& b, const std::string& v);

/// Intersects two sorted position lists (conjunctive selections).
std::vector<size_t> IntersectPositions(const std::vector<size_t>& a,
                                       const std::vector<size_t>& b);
/// Unions two sorted position lists (disjunctive selections).
std::vector<size_t> UnionPositions(const std::vector<size_t>& a,
                                   const std::vector<size_t>& b);
/// Complement of a sorted position list against [0, n).
std::vector<size_t> ComplementPositions(const std::vector<size_t>& a, size_t n);

// --- Join -------------------------------------------------------------

/// Equi-join on one key column per side. Returns aligned position pairs
/// (left_positions[i], right_positions[i]) for every match; build side is
/// the right input (hash join). Nulls never join.
struct JoinResult {
  std::vector<size_t> left_positions;
  std::vector<size_t> right_positions;
};
Result<JoinResult> HashJoin(const Bat& left_key, const Bat& right_key);

// --- Grouping & aggregation -------------------------------------------

/// Assigns each row a dense group id by the combined value of `key_columns`
/// (hash grouping). `representatives[g]` is the first row of group g.
struct Grouping {
  std::vector<size_t> group_ids;        // size = num input rows
  std::vector<size_t> representatives;  // size = num groups
  size_t num_groups = 0;
};
Result<Grouping> GroupBy(const Table& input,
                         const std::vector<size_t>& key_columns);

enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncToString(AggFunc f);

/// Decomposable aggregate state: mergeable partials, the basis of the
/// incremental (basic-window) evaluation mode of §3.1. Covers count, sum,
/// avg (= sum/count); min/max are kept but are only *insert*-decomposable —
/// merging is fine, subtracting an expired sub-window is not, which is
/// exactly why the basic-window model re-combines per-sub-window summaries
/// instead of subtracting.
struct AggPartial {
  int64_t count = 0;    // non-null inputs
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void AddValue(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  void Merge(const AggPartial& o) {
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }
  /// Extracts the final value for `f`; returns null for empty input
  /// (except count, which is 0).
  Value Finalize(AggFunc f) const;
};

/// Aggregates `values` grouped by `grouping`; `values` may be any numeric
/// BAT (count also accepts strings). Returns one partial per group.
Result<std::vector<AggPartial>> AggregateByGroup(const Bat& values,
                                                 const Grouping& grouping);
/// Aggregate over all rows (single group), optionally restricted to
/// `positions` (pass nullptr for all).
Result<AggPartial> AggregateAll(const Bat& values,
                                const std::vector<size_t>* positions);

// --- Ordering ---------------------------------------------------------

struct SortKey {
  size_t column = 0;
  bool ascending = true;
};

/// Stable sort: returns the permutation of row positions that orders
/// `input` by `keys`.
Result<std::vector<size_t>> SortPositions(const Table& input,
                                          const std::vector<SortKey>& keys);

/// Positions of the first occurrence of each distinct full row.
std::vector<size_t> DistinctPositions(const Table& input);

/// Canonical byte encoding of row `row`'s values in `columns` — equal rows
/// encode equal, across tables with the same column types. Used to merge
/// per-basic-window group summaries in the incremental window executor.
std::string EncodeRowKey(const Table& input, const std::vector<size_t>& columns,
                         size_t row);

/// First `n` positions after sorting (top-n without full materialisation of
/// the sorted table).
Result<std::vector<size_t>> TopN(const Table& input,
                                 const std::vector<SortKey>& keys, size_t n);

}  // namespace datacell

#endif  // DATACELL_ALGEBRA_OPERATORS_H_
