#ifndef DATACELL_ALGEBRA_SPECIALIZE_H_
#define DATACELL_ALGEBRA_SPECIALIZE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "algebra/kernels.h"
#include "algebra/lowering.h"
#include "algebra/plan.h"
#include "algebra/profile.h"

namespace datacell {

class BatchPool;

/// Registration-time plan specialization.
///
/// A continuous query's plan is fixed for the query's whole lifetime, so the
/// per-firing work of the tree interpreter — walking PlanNode children,
/// re-matching predicates against the lowering rules, type-switching inside
/// every operator, copying the binding map — is pure overhead on the hot
/// path. SpecializePlan() does all of that once at SubmitContinuousQuery
/// time and emits a SpecializedPipeline: a flat chain of pre-bound,
/// type-resolved steps the factory drives directly with each drained batch.
///
/// The supported shape is the canonical continuous-query chain the SQL
/// planner emits (each stage optional):
///
///   [scalar Aggregate] -> [Project] -> [Filter...] ->
///       (Scan(stream) | HashJoin(Scan(stream), Scan(static table)))
///
/// plus these per-stage forms:
///   - filters: kernel-lowerable comparisons (lowering.h), <>, LIKE,
///     IS [NOT] NULL, bool columns, and AND/OR/NOT combinations thereof;
///     constant predicates are folded away (always-true) or pinned to an
///     empty selection (always-false — the analyzer warns separately);
///   - projections: column references and column-op-literal arithmetic;
///   - aggregates: count(*)/count/sum/min/max/avg without GROUP BY;
///   - join: stream on the probe side, integer-backed keys; the hash index
///     over the static side is built once and probed per firing.
///
/// Anything else (windows, group-by, sort/distinct/limit/union, computed
/// predicates the rules above can't express, ...) falls back to the
/// interpreter with a human-readable reason, surfaced per query via the
/// shell's \explain and counted by the engine's metrics. Results are
/// identical to the interpreter's, with one documented exception: fused
/// filter+aggregate sums associate in four lanes, so floating-point sums
/// over values not exactly representable in double can differ in the last
/// ulp (the same caveat morsel-parallel aggregation carries, operators.h).
class SpecializedPipeline {
 public:
  /// Executes the compiled chain over one drained input batch. `pool`, when
  /// non-null, supplies recycled buffers for the result (and is given back
  /// intermediate join tables). Not thread-safe: the factory's exactly-once
  /// Fire() discipline serialises calls.
  Result<TablePtr> Run(const Table& input, const ExecContext& ctx,
                       BatchPool* pool);

  /// Human-readable step list for \explain.
  std::string Describe() const { return description_; }

  /// Pass-4 state accounting: bytes held by the registration-built join
  /// state (build-side table estimated at `string_bytes` per string value,
  /// plus the hash index arrays). The only cross-firing state the pipeline
  /// owns; 0 for join-free pipelines.
  size_t JoinStateBytes(int64_t string_bytes) const;

  /// Registers this pipeline's stages as profile steps (one per present
  /// stage, in execution order) and remembers their indices; Run() then
  /// accumulates per-stage rows and time whenever the ExecContext carries
  /// that profile. Fused firings attribute their whole span to the filter
  /// step — that is where the fused kernel does its work — so stage times
  /// always sum to the measured work. Call once, at factory creation.
  void RegisterProfileSteps(PipelineProfile* profile);

 private:
  friend class PipelineBuilder;

  /// Compiled filter predicate: a tree over position-set leaves. Constant
  /// subtrees are folded at compile time, so kTrue/kFalse only ever appear
  /// as the root (tracked by always_false_ / absence of the filter).
  struct Pred {
    enum class Kind {
      kLowered,    // range / string-eq via the shared lowering rules
      kNotEqual,   // <> over a lowerable equality: complement minus nulls
      kBoolColumn, // a bool column used directly as the predicate
      kIsNull,
      kIsNotNull,
      kLike,       // string column LIKE literal pattern
      kNot,        // plain complement (null operand evaluates true)
      kAnd,
      kOr,
    };
    Kind kind = Kind::kLowered;
    LoweredSelect lowered;    // kLowered / kNotEqual
    size_t column = 0;        // kBoolColumn / kIsNull / kIsNotNull / kLike
    std::string pattern;      // kLike
    std::vector<Pred> children;
  };

  /// Compiled projection: a column gather or column-op-literal arithmetic
  /// with the operand order and output type pre-resolved.
  struct Proj {
    enum class Kind { kColumn, kArith };
    Kind kind = Kind::kColumn;
    size_t column = 0;
    BinaryOp op = BinaryOp::kAdd;
    bool literal_on_left = false;
    Value literal;
    DataType out_type = DataType::kInt64;
  };

  /// Compiled scalar aggregate.
  struct Agg {
    AggFunc func = AggFunc::kCount;
    bool count_star = false;
    size_t column = 0;
    DataType col_type = DataType::kInt64;
  };

  /// Stream ⋈ static-table step. The hash index is (re)built lazily when
  /// the static table's row count moves — catalog tables are append-only,
  /// so a count check detects staleness.
  struct Join {
    size_t probe_key = 0;
    size_t build_key = 0;
    TablePtr build_table;
    Schema mid_schema;
    kernel::Int64HashIndex index;
    size_t built_rows = static_cast<size_t>(-1);
  };

  void EvalPred(const Pred& p, const Table& in, const ExecContext& ctx,
                std::vector<size_t>* out) const;
  Result<TablePtr> RunStages(const Table& in, const ExecContext& ctx,
                             BatchPool* pool);
  Result<TablePtr> RunAggregate(const Table& in, const ExecContext& ctx,
                                BatchPool* pool);
  Status RunProjection(const Proj& p, const Table& in,
                       const std::vector<size_t>* positions, Bat* out) const;
  TablePtr AcquireOutput(BatchPool* pool) const;

  size_t input_arity_ = 0;
  std::optional<Join> join_;
  std::optional<Pred> filter_;
  bool always_false_ = false;  // filter folded to constant false
  std::optional<std::vector<Proj>> project_;
  std::optional<std::vector<Agg>> aggregates_;
  // Projection applied to the one-row aggregate output (the planner places
  // a Project above every Aggregate to reorder/derive the final columns).
  std::optional<std::vector<Proj>> post_project_;
  Schema agg_schema_;  // aggregate output schema, the post-projection input
  Schema output_schema_;
  std::string description_;
  // Profile step indices (kNoStep when the stage is absent or no profile was
  // registered). The pipeline holds indices only; the profile itself arrives
  // per-run through the ExecContext, keeping the disabled path at one null
  // check.
  size_t join_step_ = PipelineProfile::kNoStep;
  size_t filter_step_ = PipelineProfile::kNoStep;
  size_t project_step_ = PipelineProfile::kNoStep;
  size_t agg_step_ = PipelineProfile::kNoStep;
  size_t post_step_ = PipelineProfile::kNoStep;
  // Reused per-firing scratch (exclusive to the owning factory's Fire()).
  std::vector<size_t> sel_, probe_pos_, build_pos_;
};

/// Outcome of a specialization attempt: exactly one of `pipeline` (success)
/// or `fallback_reason` (the interpreter stays in charge) is set.
struct SpecializeResult {
  std::unique_ptr<SpecializedPipeline> pipeline;
  std::string fallback_reason;
};

/// Compiles `plan` into a specialized pipeline. `stream_relation` names the
/// (single) streaming input's bind name; `static_bindings` resolves scans of
/// catalog tables (the build side of stream–table joins).
SpecializeResult SpecializePlan(const PlanNode& plan,
                                const std::string& stream_relation,
                                const PlanBindings& static_bindings);

}  // namespace datacell

#endif  // DATACELL_ALGEBRA_SPECIALIZE_H_
