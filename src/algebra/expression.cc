#include "algebra/expression.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace datacell {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kLike:
      return "like";
  }
  return "?";
}

const char* ScalarFuncToString(ScalarFunc f) {
  switch (f) {
    case ScalarFunc::kAbs:
      return "abs";
    case ScalarFunc::kFloor:
      return "floor";
    case ScalarFunc::kCeil:
      return "ceil";
    case ScalarFunc::kRound:
      return "round";
    case ScalarFunc::kSqrt:
      return "sqrt";
    case ScalarFunc::kLength:
      return "length";
    case ScalarFunc::kLower:
      return "lower";
    case ScalarFunc::kUpper:
      return "upper";
    case ScalarFunc::kToInt64:
      return "to_int64";
  }
  return "?";
}

bool LikeMatch(std::string_view value, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t v = 0, p = 0;
  size_t star_p = std::string_view::npos, star_v = 0;
  while (v < value.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == value[v])) {
      ++v;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_v = v;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      v = ++star_v;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

const char* UnaryOpToString(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "not";
    case UnaryOp::kNeg:
      return "-";
    case UnaryOp::kIsNull:
      return "is null";
    case UnaryOp::kIsNotNull:
      return "is not null";
  }
  return "?";
}

namespace {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

DataType ResolveFunctionType(ScalarFunc f, DataType arg) {
  switch (f) {
    case ScalarFunc::kAbs:
      return arg == DataType::kDouble ? DataType::kDouble : DataType::kInt64;
    case ScalarFunc::kFloor:
    case ScalarFunc::kCeil:
    case ScalarFunc::kRound:
    case ScalarFunc::kSqrt:
      return DataType::kDouble;
    case ScalarFunc::kLength:
    case ScalarFunc::kToInt64:
      return DataType::kInt64;
    case ScalarFunc::kLower:
    case ScalarFunc::kUpper:
      return DataType::kString;
  }
  return DataType::kInt64;
}

DataType ResolveBinaryType(BinaryOp op, DataType lhs, DataType rhs) {
  if (IsComparison(op) || IsLogical(op) || op == BinaryOp::kLike) {
    return DataType::kBool;
  }
  // Arithmetic: double wins; otherwise stay integer-backed.
  if (lhs == DataType::kDouble || rhs == DataType::kDouble) {
    return DataType::kDouble;
  }
  return DataType::kInt64;
}

}  // namespace

ExprPtr Expr::Column(size_t index, std::string name, DataType type,
                     SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->column_index_ = index;
  e->name_ = std::move(name);
  e->type_ = type;
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::Literal(Value v, SourceLoc loc) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->type_ = v.is_null() ? DataType::kInt64 : v.type();
  e->literal_ = std::move(v);
  e->loc_ = loc;
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  DC_CHECK(lhs != nullptr);
  DC_CHECK(rhs != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->bin_op_ = op;
  e->type_ = ResolveBinaryType(op, lhs->type(), rhs->type());
  e->loc_ = loc.valid() ? loc : lhs->loc();
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Function(ScalarFunc func, ExprPtr arg, SourceLoc loc) {
  DC_CHECK(arg != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kFunction;
  e->func_ = func;
  e->type_ = ResolveFunctionType(func, arg->type());
  e->loc_ = loc.valid() ? loc : arg->loc();
  e->children_ = {std::move(arg)};
  return e;
}

Result<ExprPtr> Expr::Case(std::vector<ExprPtr> when_then, ExprPtr else_value,
                           SourceLoc loc) {
  if (when_then.empty() || when_then.size() % 2 != 0 || else_value == nullptr) {
    return Status::InvalidArgument(
        "CASE needs (condition, value) pairs and an ELSE value");
  }
  DataType out = else_value->type();
  for (size_t i = 0; i + 1 < when_then.size(); i += 2) {
    if (when_then[i] == nullptr || when_then[i + 1] == nullptr) {
      return Status::InvalidArgument("null CASE branch");
    }
    if (when_then[i]->type() != DataType::kBool) {
      return Status::TypeError("CASE WHEN condition must be boolean: " +
                               when_then[i]->ToString());
    }
    DataType vt = when_then[i + 1]->type();
    if (vt == out) continue;
    if (IsNumeric(vt) && IsNumeric(out)) {
      out = DataType::kDouble;  // mixed numeric branches widen
      continue;
    }
    return Status::TypeError("CASE branches must share a type");
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCase;
  e->type_ = out;
  e->loc_ = loc;
  e->children_ = std::move(when_then);
  e->children_.push_back(std::move(else_value));
  return ExprPtr(e);
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr operand, SourceLoc loc) {
  DC_CHECK(operand != nullptr);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->un_op_ = op;
  e->type_ = (op == UnaryOp::kNeg) ? operand->type() : DataType::kBool;
  e->loc_ = loc.valid() ? loc : operand->loc();
  e->children_ = {std::move(operand)};
  return e;
}

std::string Expr::ToString() const {
  // Rendered by append throughout: one-char-literal operator+ chains trip
  // GCC 12's -Wrestrict false positive (PR105329) inside libstdc++.
  switch (kind_) {
    case ExprKind::kColumnRef: {
      if (!name_.empty()) return name_;
      std::string s = "$";
      s += std::to_string(column_index_);
      return s;
    }
    case ExprKind::kLiteral: {
      if (literal_.is_null()) return "null";
      if (!literal_.is_string()) return literal_.ToString();
      std::string quoted = "'";
      quoted += literal_.ToString();
      quoted += '\'';
      return quoted;
    }
    case ExprKind::kBinary: {
      std::string s = "(";
      s += left()->ToString();
      s += ' ';
      s += BinaryOpToString(bin_op_);
      s += ' ';
      s += right()->ToString();
      s += ')';
      return s;
    }
    case ExprKind::kFunction: {
      std::string s = ScalarFuncToString(func_);
      s += '(';
      s += operand()->ToString();
      s += ')';
      return s;
    }
    case ExprKind::kCase: {
      std::string s = "case";
      for (size_t i = 0; i < num_when_branches(); ++i) {
        s += " when " + when_cond(i)->ToString() + " then " +
             when_value(i)->ToString();
      }
      return s + " else " + else_value()->ToString() + " end";
    }
    case ExprKind::kUnary: {
      std::string s;
      if (un_op_ == UnaryOp::kIsNull || un_op_ == UnaryOp::kIsNotNull) {
        s = "(";
        s += operand()->ToString();
        s += ' ';
        s += UnaryOpToString(un_op_);
        s += ')';
        return s;
      }
      s = UnaryOpToString(un_op_);
      s += '(';
      s += operand()->ToString();
      s += ')';
      return s;
    }
  }
  return "?";
}

bool Expr::IsConstant() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return false;
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kBinary:
      return left()->IsConstant() && right()->IsConstant();
    case ExprKind::kUnary:
    case ExprKind::kFunction:
      return operand()->IsConstant();
    case ExprKind::kCase:
      for (const ExprPtr& c : children_) {
        if (!c->IsConstant()) return false;
      }
      return true;
  }
  return false;
}

namespace {

/// Reads element `i` of `b` as double; caller must ensure numeric type.
inline double NumericAt(const Bat& b, size_t i) {
  switch (b.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(b.Int64At(i));
    case DataType::kDouble:
      return b.DoubleAt(i);
    case DataType::kBool:
      return b.BoolAt(i) ? 1.0 : 0.0;
    default:
      DC_CHECK(false);
      return 0.0;
  }
}

Result<BatPtr> EvalLiteral(const Expr& expr, size_t n) {
  auto out = std::make_shared<Bat>(expr.type());
  const Value& v = expr.literal();
  for (size_t i = 0; i < n; ++i) {
    DC_RETURN_NOT_OK(out->AppendValue(v));
  }
  return out;
}

Result<BatPtr> EvalArithmetic(BinaryOp op, DataType out_type, const Bat& l,
                              const Bat& r) {
  size_t n = l.size();
  auto out = std::make_shared<Bat>(out_type);
  bool nulls = l.has_nulls() || r.has_nulls();
  if (out_type == DataType::kInt64 && op != BinaryOp::kDiv) {
    // Pure integer path (add/sub/mul/mod on int64-backed operands).
    for (size_t i = 0; i < n; ++i) {
      if (nulls && (l.IsNull(i) || r.IsNull(i))) {
        out->AppendNull();
        continue;
      }
      int64_t a = l.Int64At(i);
      int64_t b = r.Int64At(i);
      switch (op) {
        case BinaryOp::kAdd:
          out->AppendInt64(a + b);
          break;
        case BinaryOp::kSub:
          out->AppendInt64(a - b);
          break;
        case BinaryOp::kMul:
          out->AppendInt64(a * b);
          break;
        case BinaryOp::kMod:
          if (b == 0) {
            out->AppendNull();
          } else {
            out->AppendInt64(a % b);
          }
          break;
        default:
          return Status::Internal("bad int arithmetic op");
      }
    }
    return out;
  }
  if (op == BinaryOp::kDiv && out_type == DataType::kInt64) {
    for (size_t i = 0; i < n; ++i) {
      if ((nulls && (l.IsNull(i) || r.IsNull(i))) || r.Int64At(i) == 0) {
        out->AppendNull();
      } else {
        out->AppendInt64(l.Int64At(i) / r.Int64At(i));
      }
    }
    return out;
  }
  // Double path.
  for (size_t i = 0; i < n; ++i) {
    if (nulls && (l.IsNull(i) || r.IsNull(i))) {
      out->AppendNull();
      continue;
    }
    double a = NumericAt(l, i);
    double b = NumericAt(r, i);
    switch (op) {
      case BinaryOp::kAdd:
        out->AppendDouble(a + b);
        break;
      case BinaryOp::kSub:
        out->AppendDouble(a - b);
        break;
      case BinaryOp::kMul:
        out->AppendDouble(a * b);
        break;
      case BinaryOp::kDiv:
        if (b == 0.0) {
          out->AppendNull();
        } else {
          out->AppendDouble(a / b);
        }
        break;
      case BinaryOp::kMod:
        if (b == 0.0) {
          out->AppendNull();
        } else {
          out->AppendDouble(std::fmod(a, b));
        }
        break;
      default:
        return Status::Internal("bad arithmetic op");
    }
  }
  return out;
}

Result<BatPtr> EvalComparison(BinaryOp op, const Bat& l, const Bat& r) {
  size_t n = l.size();
  auto out = std::make_shared<Bat>(DataType::kBool);
  bool nulls = l.has_nulls() || r.has_nulls();
  bool strings = l.type() == DataType::kString;
  if (strings && r.type() != DataType::kString) {
    return Status::TypeError("cannot compare string with non-string");
  }
  if (!strings && r.type() == DataType::kString) {
    return Status::TypeError("cannot compare non-string with string");
  }
  auto emit = [&](bool lt, bool eq) {
    bool v = false;
    switch (op) {
      case BinaryOp::kEq:
        v = eq;
        break;
      case BinaryOp::kNe:
        v = !eq;
        break;
      case BinaryOp::kLt:
        v = lt;
        break;
      case BinaryOp::kLe:
        v = lt || eq;
        break;
      case BinaryOp::kGt:
        v = !lt && !eq;
        break;
      case BinaryOp::kGe:
        v = !lt;
        break;
      default:
        DC_CHECK(false);
    }
    out->AppendBool(v);
  };
  // Exact integer path when both sides are int64-backed: avoids the
  // double-rounding hazard for values beyond 2^53.
  bool both_int = IsIntegerBacked(l.type()) && IsIntegerBacked(r.type());
  for (size_t i = 0; i < n; ++i) {
    if (nulls && (l.IsNull(i) || r.IsNull(i))) {
      // Simplified 3VL: comparison with null is false.
      out->AppendBool(false);
      continue;
    }
    if (strings) {
      const std::string& a = l.StringAt(i);
      const std::string& b = r.StringAt(i);
      emit(a < b, a == b);
    } else if (both_int) {
      int64_t a = l.Int64At(i);
      int64_t b = r.Int64At(i);
      emit(a < b, a == b);
    } else {
      double a = NumericAt(l, i);
      double b = NumericAt(r, i);
      emit(a < b, a == b);
    }
  }
  return out;
}

Result<BatPtr> EvalLogical(BinaryOp op, const Bat& l, const Bat& r) {
  if (l.type() != DataType::kBool || r.type() != DataType::kBool) {
    return Status::TypeError("logical operator requires boolean operands");
  }
  size_t n = l.size();
  auto out = std::make_shared<Bat>(DataType::kBool);
  for (size_t i = 0; i < n; ++i) {
    bool a = !l.IsNull(i) && l.BoolAt(i);
    bool b = !r.IsNull(i) && r.BoolAt(i);
    out->AppendBool(op == BinaryOp::kAnd ? (a && b) : (a || b));
  }
  return out;
}

}  // namespace

Result<BatPtr> EvaluateExpr(const Expr& expr, const Table& input) {
  size_t n = input.num_rows();
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      if (expr.column_index() >= input.num_columns()) {
        return Status::Internal("column index out of range: " +
                                std::to_string(expr.column_index()));
      }
      // Zero-copy: share the input column. Consumers treat BATs from
      // EvaluateExpr as read-only.
      return input.column(expr.column_index());
    }
    case ExprKind::kLiteral:
      return EvalLiteral(expr, n);
    case ExprKind::kUnary: {
      DC_ASSIGN_OR_RETURN(BatPtr child, EvaluateExpr(*expr.operand(), input));
      auto out = std::make_shared<Bat>(expr.type());
      switch (expr.unary_op()) {
        case UnaryOp::kNot:
          if (child->type() != DataType::kBool) {
            return Status::TypeError("NOT requires a boolean operand");
          }
          for (size_t i = 0; i < n; ++i) {
            out->AppendBool(!(!child->IsNull(i) && child->BoolAt(i)));
          }
          return out;
        case UnaryOp::kNeg:
          for (size_t i = 0; i < n; ++i) {
            if (child->IsNull(i)) {
              out->AppendNull();
            } else if (expr.type() == DataType::kDouble) {
              out->AppendDouble(-NumericAt(*child, i));
            } else {
              out->AppendInt64(-child->Int64At(i));
            }
          }
          return out;
        case UnaryOp::kIsNull:
          for (size_t i = 0; i < n; ++i) out->AppendBool(child->IsNull(i));
          return out;
        case UnaryOp::kIsNotNull:
          for (size_t i = 0; i < n; ++i) out->AppendBool(!child->IsNull(i));
          return out;
      }
      return Status::Internal("bad unary op");
    }
    case ExprKind::kBinary: {
      DC_ASSIGN_OR_RETURN(BatPtr l, EvaluateExpr(*expr.left(), input));
      DC_ASSIGN_OR_RETURN(BatPtr r, EvaluateExpr(*expr.right(), input));
      if (l->size() != r->size()) {
        return Status::Internal("operand cardinality mismatch");
      }
      BinaryOp op = expr.binary_op();
      if (op == BinaryOp::kLike) {
        if (l->type() != DataType::kString || r->type() != DataType::kString) {
          return Status::TypeError("LIKE requires string operands");
        }
        auto out = std::make_shared<Bat>(DataType::kBool);
        for (size_t i = 0; i < n; ++i) {
          if (l->IsNull(i) || r->IsNull(i)) {
            out->AppendBool(false);
            continue;
          }
          out->AppendBool(LikeMatch(l->StringAt(i), r->StringAt(i)));
        }
        return out;
      }
      if (IsLogical(op)) return EvalLogical(op, *l, *r);
      if (IsComparison(op)) return EvalComparison(op, *l, *r);
      return EvalArithmetic(op, expr.type(), *l, *r);
    }
    case ExprKind::kFunction: {
      DC_ASSIGN_OR_RETURN(BatPtr arg, EvaluateExpr(*expr.operand(), input));
      auto out = std::make_shared<Bat>(expr.type());
      ScalarFunc f = expr.scalar_func();
      for (size_t i = 0; i < n; ++i) {
        if (arg->IsNull(i)) {
          out->AppendNull();
          continue;
        }
        switch (f) {
          case ScalarFunc::kAbs:
            if (arg->type() == DataType::kDouble) {
              out->AppendDouble(std::abs(arg->DoubleAt(i)));
            } else {
              out->AppendInt64(std::abs(arg->Int64At(i)));
            }
            break;
          case ScalarFunc::kFloor:
            out->AppendDouble(std::floor(NumericAt(*arg, i)));
            break;
          case ScalarFunc::kCeil:
            out->AppendDouble(std::ceil(NumericAt(*arg, i)));
            break;
          case ScalarFunc::kRound:
            out->AppendDouble(std::round(NumericAt(*arg, i)));
            break;
          case ScalarFunc::kSqrt: {
            double v = NumericAt(*arg, i);
            if (v < 0) {
              out->AppendNull();
            } else {
              out->AppendDouble(std::sqrt(v));
            }
            break;
          }
          case ScalarFunc::kLength:
            out->AppendInt64(static_cast<int64_t>(arg->StringAt(i).size()));
            break;
          case ScalarFunc::kLower: {
            std::string v = arg->StringAt(i);
            for (char& c : v) c = static_cast<char>(std::tolower(
                static_cast<unsigned char>(c)));
            out->AppendString(std::move(v));
            break;
          }
          case ScalarFunc::kUpper: {
            std::string v = arg->StringAt(i);
            for (char& c : v) c = static_cast<char>(std::toupper(
                static_cast<unsigned char>(c)));
            out->AppendString(std::move(v));
            break;
          }
          case ScalarFunc::kToInt64:
            out->AppendInt64(static_cast<int64_t>(NumericAt(*arg, i)));
            break;
        }
      }
      return out;
    }
    case ExprKind::kCase: {
      // Evaluate all branches in bulk, then pick per row (eager but
      // columnar; branches are usually cheap).
      std::vector<BatPtr> conds;
      std::vector<BatPtr> vals;
      for (size_t b = 0; b < expr.num_when_branches(); ++b) {
        DC_ASSIGN_OR_RETURN(BatPtr c, EvaluateExpr(*expr.when_cond(b), input));
        DC_ASSIGN_OR_RETURN(BatPtr v, EvaluateExpr(*expr.when_value(b), input));
        conds.push_back(std::move(c));
        vals.push_back(std::move(v));
      }
      DC_ASSIGN_OR_RETURN(BatPtr other, EvaluateExpr(*expr.else_value(), input));
      auto out = std::make_shared<Bat>(expr.type());
      auto append_from = [&](const Bat& src, size_t i) -> Status {
        if (src.IsNull(i)) {
          out->AppendNull();
          return Status::OK();
        }
        // Branch values may be int64 while the CASE widened to double.
        if (expr.type() == DataType::kDouble &&
            src.type() != DataType::kDouble) {
          out->AppendDouble(NumericAt(src, i));
          return Status::OK();
        }
        return out->AppendValue(src.GetValue(i));
      };
      for (size_t i = 0; i < n; ++i) {
        bool taken = false;
        for (size_t b = 0; b < conds.size(); ++b) {
          if (!conds[b]->IsNull(i) && conds[b]->BoolAt(i)) {
            DC_RETURN_NOT_OK(append_from(*vals[b], i));
            taken = true;
            break;
          }
        }
        if (!taken) {
          DC_RETURN_NOT_OK(append_from(*other, i));
        }
      }
      return out;
    }
  }
  return Status::Internal("bad expression kind");
}

Result<std::vector<size_t>> EvaluatePredicate(const Expr& expr,
                                              const Table& input) {
  if (expr.type() != DataType::kBool) {
    return Status::TypeError("predicate must be boolean, got " +
                             std::string(DataTypeToString(expr.type())));
  }
  DC_ASSIGN_OR_RETURN(BatPtr mask, EvaluateExpr(expr, input));
  std::vector<size_t> positions;
  size_t n = mask->size();
  for (size_t i = 0; i < n; ++i) {
    if (!mask->IsNull(i) && mask->BoolAt(i)) positions.push_back(i);
  }
  return positions;
}

std::optional<bool> TryFoldConstantPredicate(const Expr& expr) {
  if (expr.type() != DataType::kBool || !expr.IsConstant()) {
    return std::nullopt;
  }
  // Evaluate over a one-row dummy table: a constant expression never reads
  // the columns, and the single row exposes exactly the per-row predicate
  // semantics (null folds to false).
  Table dummy("", Schema({{"_", DataType::kBool}}));
  if (!dummy.AppendRow({Value::Bool(false)}).ok()) return std::nullopt;
  auto positions = EvaluatePredicate(expr, dummy);
  if (!positions.ok()) return std::nullopt;
  return !positions->empty();
}

}  // namespace datacell
