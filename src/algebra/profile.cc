#include "algebra/profile.h"

#include <cinttypes>
#include <cstdio>

#include "algebra/plan.h"

namespace datacell {

size_t PipelineProfile::AddStep(std::string label, int depth) {
  steps_.emplace_back();
  Step& s = steps_.back();
  s.label = std::move(label);
  s.depth = depth;
  return steps_.size() - 1;
}

void PipelineProfile::MapNode(const PlanNode* node, size_t step) {
  node_steps_[node] = step;
}

size_t PipelineProfile::StepForNode(const PlanNode* node) const {
  auto it = node_steps_.find(node);
  return it == node_steps_.end() ? kNoStep : it->second;
}

void PipelineProfile::RecordStep(size_t step, int64_t rows_in,
                                 int64_t rows_out, int64_t time_ns) {
  if (step >= steps_.size()) return;
  Step& s = steps_[step];
  s.calls.fetch_add(1, std::memory_order_relaxed);
  if (rows_in != kRowsUnknown) {
    s.rows_in.fetch_add(rows_in, std::memory_order_relaxed);
    s.rows_in_measured.store(true, std::memory_order_relaxed);
  }
  s.rows_out.fetch_add(rows_out, std::memory_order_relaxed);
  s.time_ns.fetch_add(time_ns, std::memory_order_relaxed);
}

void PipelineProfile::RecordFire(int64_t time_ns) {
  fires_.fetch_add(1, std::memory_order_relaxed);
  fire_time_ns_.fetch_add(time_ns, std::memory_order_relaxed);
}

namespace {

void AddPlanSteps(const PlanNode& n, int depth, PipelineProfile* out) {
  size_t step = out->AddStep(n.Describe(), depth);
  out->MapNode(&n, step);
  for (const PlanPtr& c : n.children()) {
    AddPlanSteps(*c, depth + 1, out);
  }
}

}  // namespace

void PipelineProfile::FromPlan(const PlanNode& root, PipelineProfile* out) {
  AddPlanSteps(root, 0, out);
}

PipelineProfile::Snapshot PipelineProfile::Snap() const {
  Snapshot snap;
  snap.fires = fires_.load(std::memory_order_relaxed);
  snap.fire_time_ns = fire_time_ns_.load(std::memory_order_relaxed);
  snap.steps.reserve(steps_.size());
  for (const Step& s : steps_) {
    StepSnapshot out;
    out.label = s.label;
    out.depth = s.depth;
    out.calls = s.calls.load(std::memory_order_relaxed);
    out.rows_in = s.rows_in_measured.load(std::memory_order_relaxed)
                      ? s.rows_in.load(std::memory_order_relaxed)
                      : kRowsUnknown;
    out.rows_out = s.rows_out.load(std::memory_order_relaxed);
    out.time_ns = s.time_ns.load(std::memory_order_relaxed);
    snap.steps.push_back(std::move(out));
  }
  return snap;
}

std::string PipelineProfile::Render() const {
  Snapshot snap = Snap();
  // Derive unmeasured rows_in from the immediate children (the steps that
  // directly follow at depth + 1, before the next step at <= this depth).
  // Preorder step lists — both builders emit that order — make this the
  // plan-tree child relation. Leaves pass their own output through (a scan
  // "reads" what it returns).
  std::vector<int64_t> rows_in(snap.steps.size(), 0);
  for (size_t i = 0; i < snap.steps.size(); ++i) {
    if (snap.steps[i].rows_in != kRowsUnknown) {
      rows_in[i] = snap.steps[i].rows_in;
      continue;
    }
    int64_t sum = 0;
    bool any_child = false;
    for (size_t j = i + 1; j < snap.steps.size(); ++j) {
      if (snap.steps[j].depth <= snap.steps[i].depth) break;
      if (snap.steps[j].depth == snap.steps[i].depth + 1) {
        any_child = true;
        sum += snap.steps[j].rows_out;
      }
    }
    rows_in[i] = any_child ? sum : snap.steps[i].rows_out;
  }

  char line[256];
  std::string out;
  double total_ms = static_cast<double>(snap.fire_time_ns) / 1e6;
  std::snprintf(line, sizeof(line),
                "profile: %" PRId64 " fires, %.3f ms total fire time\n",
                snap.fires, total_ms);
  out += line;
  if (snap.fires == 0) {
    out += "  (no firings profiled yet)\n";
    return out;
  }
  std::snprintf(line, sizeof(line), "  %10s %12s %12s %12s %7s  %s\n", "calls",
                "rows in", "rows out", "time", "% fire", "step");
  out += line;
  for (size_t i = 0; i < snap.steps.size(); ++i) {
    const StepSnapshot& s = snap.steps[i];
    double pct = snap.fire_time_ns > 0 ? 100.0 * static_cast<double>(s.time_ns) /
                                             static_cast<double>(
                                                 snap.fire_time_ns)
                                       : 0.0;
    char time_buf[32];
    if (s.time_ns >= 1000000) {
      std::snprintf(time_buf, sizeof(time_buf), "%.2f ms",
                    static_cast<double>(s.time_ns) / 1e6);
    } else if (s.time_ns >= 1000) {
      std::snprintf(time_buf, sizeof(time_buf), "%.2f us",
                    static_cast<double>(s.time_ns) / 1e3);
    } else {
      std::snprintf(time_buf, sizeof(time_buf), "%" PRId64 " ns", s.time_ns);
    }
    std::string label(static_cast<size_t>(s.depth) * 2, ' ');
    label += s.label;
    std::snprintf(line, sizeof(line),
                  "  %10" PRId64 " %12" PRId64 " %12" PRId64
                  " %12s %6.1f%%  %s\n",
                  s.calls, rows_in[i], s.rows_out, time_buf, pct,
                  label.c_str());
    out += line;
  }
  return out;
}

}  // namespace datacell
