#include "algebra/kernels.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace datacell {
namespace kernel {

size_t SelectRangeInt64Scalar(const int64_t* data, int64_t l, int64_t h,
                              size_t begin, size_t end, size_t* out) {
  size_t k = 0;
  for (size_t i = begin; i < end; ++i) {
    out[k] = i;
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

size_t SelectRangeDoubleScalar(const double* data, double l, double h,
                               size_t begin, size_t end, size_t* out) {
  size_t k = 0;
  for (size_t i = begin; i < end; ++i) {
    out[k] = i;
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

#if defined(__x86_64__)

namespace {

/// For each 4-bit keep mask, the qualifying lane indices packed LSB-first
/// (trailing entries are padding, overwritten by the next block's stores).
struct LaneLut {
  uint8_t idx[4];
};
constexpr LaneLut kLanes[16] = {
    {{0, 0, 0, 0}}, {{0, 0, 0, 0}}, {{1, 0, 0, 0}}, {{0, 1, 0, 0}},
    {{2, 0, 0, 0}}, {{0, 2, 0, 0}}, {{1, 2, 0, 0}}, {{0, 1, 2, 0}},
    {{3, 0, 0, 0}}, {{0, 3, 0, 0}}, {{1, 3, 0, 0}}, {{0, 1, 3, 0}},
    {{2, 3, 0, 0}}, {{0, 2, 3, 0}}, {{1, 2, 3, 0}}, {{0, 1, 2, 3}},
};

/// Emits one 4-lane block: four unconditional stores, cursor advances by
/// popcount. Writing past the live prefix is safe — with `k` qualifiers out
/// of `i - begin` scanned, k + 3 <= end - begin - 1 inside the vector loop.
inline size_t EmitBlock(size_t* out, size_t k, size_t i, int keep) {
  const LaneLut& lut = kLanes[keep];
  out[k + 0] = i + lut.idx[0];
  out[k + 1] = i + lut.idx[1];
  out[k + 2] = i + lut.idx[2];
  out[k + 3] = i + lut.idx[3];
  return k + static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(keep)));
}

}  // namespace

__attribute__((target("avx2"))) size_t SelectRangeInt64Avx2(
    const int64_t* data, int64_t l, int64_t h, size_t begin, size_t end,
    size_t* out) {
  size_t k = 0;
  size_t i = begin;
  const __m256i vlo = _mm256_set1_epi64x(l);
  const __m256i vhi = _mm256_set1_epi64x(h);
  for (; i + 4 <= end; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    // keep = !(v < l) && !(v > h), via the only 64-bit compare AVX2 has.
    __m256i lt = _mm256_cmpgt_epi64(vlo, v);
    __m256i gt = _mm256_cmpgt_epi64(v, vhi);
    int drop = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_or_si256(lt, gt)));
    k = EmitBlock(out, k, i, ~drop & 0xF);
  }
  for (; i < end; ++i) {
    out[k] = i;
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

__attribute__((target("avx2"))) size_t SelectRangeDoubleAvx2(
    const double* data, double l, double h, size_t begin, size_t end,
    size_t* out) {
  size_t k = 0;
  size_t i = begin;
  const __m256d vlo = _mm256_set1_pd(l);
  const __m256d vhi = _mm256_set1_pd(h);
  for (; i + 4 <= end; i += 4) {
    __m256d v = _mm256_loadu_pd(data + i);
    // Ordered-quiet compares: NaN fails both, as in the scalar kernel.
    __m256d ge = _mm256_cmp_pd(v, vlo, _CMP_GE_OQ);
    __m256d le = _mm256_cmp_pd(v, vhi, _CMP_LE_OQ);
    int keep = _mm256_movemask_pd(_mm256_and_pd(ge, le));
    k = EmitBlock(out, k, i, keep);
  }
  for (; i < end; ++i) {
    out[k] = i;
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}

#else  // !defined(__x86_64__)

size_t SelectRangeInt64Avx2(const int64_t* data, int64_t l, int64_t h,
                            size_t begin, size_t end, size_t* out) {
  return SelectRangeInt64Scalar(data, l, h, begin, end, out);
}

size_t SelectRangeDoubleAvx2(const double* data, double l, double h,
                             size_t begin, size_t end, size_t* out) {
  return SelectRangeDoubleScalar(data, l, h, begin, end, out);
}

bool HasAvx2() { return false; }

#endif  // defined(__x86_64__)

size_t SelectRangeInt64(const int64_t* data, int64_t l, int64_t h,
                        size_t begin, size_t end, size_t* out) {
  return HasAvx2() ? SelectRangeInt64Avx2(data, l, h, begin, end, out)
                   : SelectRangeInt64Scalar(data, l, h, begin, end, out);
}

size_t SelectRangeDouble(const double* data, double l, double h, size_t begin,
                         size_t end, size_t* out) {
  return HasAvx2() ? SelectRangeDoubleAvx2(data, l, h, begin, end, out)
                   : SelectRangeDoubleScalar(data, l, h, begin, end, out);
}

}  // namespace kernel
}  // namespace datacell
