#include "algebra/kernels.h"

#include <cstdlib>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace datacell {
namespace kernel {

namespace {

/// Whether DATACELL_DISABLE_AVX2 is set to something truthy.
bool Avx2DisabledByEnv() {
  const char* env = std::getenv("DATACELL_DISABLE_AVX2");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

/// Four independent accumulator lanes — the shared structure of every
/// FilterAgg variant. The scalar kernels drive it element-wise with
/// lane = i & 3; the AVX2 kernels keep it in ymm registers and spill into
/// it for the tail. Because both variants fold lanes in the same fixed
/// order, their results are bit-identical.
struct AggLanes {
  double sum[4] = {0.0, 0.0, 0.0, 0.0};
  double mn[4] = {std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity()};
  double mx[4] = {-std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity(),
                  -std::numeric_limits<double>::infinity()};
  int64_t count = 0;

  /// Masked accumulate: dropped elements add +0.0 to the sum lane (a no-op
  /// for every reachable accumulator value) and never touch min/max —
  /// mirroring the AVX2 and-mask / blend sequence exactly.
  void Add(size_t lane, bool keep, double v) {
    sum[lane] += keep ? v : 0.0;
    if (keep && v < mn[lane]) mn[lane] = v;
    if (keep && v > mx[lane]) mx[lane] = v;
    count += static_cast<int64_t>(keep);
  }

  void Finish(FilterAggResult* out) const {
    out->count = count;
    out->sum = (sum[0] + sum[1]) + (sum[2] + sum[3]);
    double lo = mn[0], hi = mx[0];
    for (int j = 1; j < 4; ++j) {
      if (mn[j] < lo) lo = mn[j];
      if (mx[j] > hi) hi = mx[j];
    }
    out->min = lo;
    out->max = hi;
  }
};

template <typename F, typename V>
void FilterAggScalarImpl(const F* fdata, F l, F h, const V* values, size_t n,
                         FilterAggResult* out) {
  AggLanes lanes;
  for (size_t i = 0; i < n; ++i) {
    bool keep = (fdata[i] >= l) & (fdata[i] <= h);
    lanes.Add(i & 3, keep, static_cast<double>(values[i]));
  }
  lanes.Finish(out);
}

template <typename F, typename V>
size_t FilterValuesScalarImpl(const F* data, F l, F h, size_t n, V* out) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    out[k] = data[i];
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

}  // namespace

size_t SelectRangeInt64Scalar(const int64_t* data, int64_t l, int64_t h,
                              size_t begin, size_t end, size_t* out) {
  size_t k = 0;
  for (size_t i = begin; i < end; ++i) {
    out[k] = i;
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

size_t SelectRangeDoubleScalar(const double* data, double l, double h,
                               size_t begin, size_t end, size_t* out) {
  size_t k = 0;
  for (size_t i = begin; i < end; ++i) {
    out[k] = i;
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

size_t FilterValuesInt64Scalar(const int64_t* data, int64_t l, int64_t h,
                               size_t n, int64_t* out) {
  return FilterValuesScalarImpl(data, l, h, n, out);
}

size_t FilterValuesDoubleScalar(const double* data, double l, double h,
                                size_t n, double* out) {
  return FilterValuesScalarImpl(data, l, h, n, out);
}

void FilterAggInt64Int64Scalar(const int64_t* fdata, int64_t l, int64_t h,
                               const int64_t* values, size_t n,
                               FilterAggResult* out) {
  FilterAggScalarImpl(fdata, l, h, values, n, out);
}

void FilterAggInt64DoubleScalar(const int64_t* fdata, int64_t l, int64_t h,
                                const double* values, size_t n,
                                FilterAggResult* out) {
  FilterAggScalarImpl(fdata, l, h, values, n, out);
}

void FilterAggDoubleInt64Scalar(const double* fdata, double l, double h,
                                const int64_t* values, size_t n,
                                FilterAggResult* out) {
  FilterAggScalarImpl(fdata, l, h, values, n, out);
}

void FilterAggDoubleDoubleScalar(const double* fdata, double l, double h,
                                 const double* values, size_t n,
                                 FilterAggResult* out) {
  FilterAggScalarImpl(fdata, l, h, values, n, out);
}

#if defined(__x86_64__)

namespace {

/// For each 4-bit keep mask, the qualifying lane indices packed LSB-first
/// (trailing entries are padding, overwritten by the next block's stores).
struct LaneLut {
  uint8_t idx[4];
};
constexpr LaneLut kLanes[16] = {
    {{0, 0, 0, 0}}, {{0, 0, 0, 0}}, {{1, 0, 0, 0}}, {{0, 1, 0, 0}},
    {{2, 0, 0, 0}}, {{0, 2, 0, 0}}, {{1, 2, 0, 0}}, {{0, 1, 2, 0}},
    {{3, 0, 0, 0}}, {{0, 3, 0, 0}}, {{1, 3, 0, 0}}, {{0, 1, 3, 0}},
    {{2, 3, 0, 0}}, {{0, 2, 3, 0}}, {{1, 2, 3, 0}}, {{0, 1, 2, 3}},
};

/// For each 4-bit keep mask over 64-bit lanes, the vpermd selector packing
/// the kept lanes' 32-bit halves LSB-first (padding lanes repeat 0 and are
/// overwritten by later stores).
struct Perm64Lut {
  int32_t idx[8];
};
constexpr Perm64Lut kPerm64[16] = {
    {{0, 1, 2, 3, 4, 5, 6, 7}}, {{0, 1, 0, 0, 0, 0, 0, 0}},
    {{2, 3, 0, 0, 0, 0, 0, 0}}, {{0, 1, 2, 3, 0, 0, 0, 0}},
    {{4, 5, 0, 0, 0, 0, 0, 0}}, {{0, 1, 4, 5, 0, 0, 0, 0}},
    {{2, 3, 4, 5, 0, 0, 0, 0}}, {{0, 1, 2, 3, 4, 5, 0, 0}},
    {{6, 7, 0, 0, 0, 0, 0, 0}}, {{0, 1, 6, 7, 0, 0, 0, 0}},
    {{2, 3, 6, 7, 0, 0, 0, 0}}, {{0, 1, 2, 3, 6, 7, 0, 0}},
    {{4, 5, 6, 7, 0, 0, 0, 0}}, {{0, 1, 4, 5, 6, 7, 0, 0}},
    {{2, 3, 4, 5, 6, 7, 0, 0}}, {{0, 1, 2, 3, 4, 5, 6, 7}},
};

/// Emits one 4-lane block: four unconditional stores, cursor advances by
/// popcount. Writing past the live prefix is safe — with `k` qualifiers out
/// of `i - begin` scanned, k + 3 <= end - begin - 1 inside the vector loop.
inline size_t EmitBlock(size_t* out, size_t k, size_t i, int keep) {
  const LaneLut& lut = kLanes[keep];
  out[k + 0] = i + lut.idx[0];
  out[k + 1] = i + lut.idx[1];
  out[k + 2] = i + lut.idx[2];
  out[k + 3] = i + lut.idx[3];
  return k + static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(keep)));
}

}  // namespace

__attribute__((target("avx2"))) size_t SelectRangeInt64Avx2(
    const int64_t* data, int64_t l, int64_t h, size_t begin, size_t end,
    size_t* out) {
  size_t k = 0;
  size_t i = begin;
  const __m256i vlo = _mm256_set1_epi64x(l);
  const __m256i vhi = _mm256_set1_epi64x(h);
  for (; i + 4 <= end; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    // keep = !(v < l) && !(v > h), via the only 64-bit compare AVX2 has.
    __m256i lt = _mm256_cmpgt_epi64(vlo, v);
    __m256i gt = _mm256_cmpgt_epi64(v, vhi);
    int drop = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_or_si256(lt, gt)));
    k = EmitBlock(out, k, i, ~drop & 0xF);
  }
  for (; i < end; ++i) {
    out[k] = i;
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

__attribute__((target("avx2"))) size_t SelectRangeDoubleAvx2(
    const double* data, double l, double h, size_t begin, size_t end,
    size_t* out) {
  size_t k = 0;
  size_t i = begin;
  const __m256d vlo = _mm256_set1_pd(l);
  const __m256d vhi = _mm256_set1_pd(h);
  for (; i + 4 <= end; i += 4) {
    __m256d v = _mm256_loadu_pd(data + i);
    // Ordered-quiet compares: NaN fails both, as in the scalar kernel.
    __m256d ge = _mm256_cmp_pd(v, vlo, _CMP_GE_OQ);
    __m256d le = _mm256_cmp_pd(v, vhi, _CMP_LE_OQ);
    int keep = _mm256_movemask_pd(_mm256_and_pd(ge, le));
    k = EmitBlock(out, k, i, keep);
  }
  for (; i < end; ++i) {
    out[k] = i;
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

__attribute__((target("avx2"))) size_t FilterValuesInt64Avx2(
    const int64_t* data, int64_t l, int64_t h, size_t n, int64_t* out) {
  size_t k = 0;
  size_t i = 0;
  const __m256i vlo = _mm256_set1_epi64x(l);
  const __m256i vhi = _mm256_set1_epi64x(h);
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    __m256i lt = _mm256_cmpgt_epi64(vlo, v);
    __m256i gt = _mm256_cmpgt_epi64(v, vhi);
    int drop = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_or_si256(lt, gt)));
    int keep = ~drop & 0xF;
    // Compress the kept 64-bit lanes to the front via their 32-bit halves
    // (AVX2 has no 64-bit variable permute), one unconditional store.
    __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kPerm64[keep].idx));
    __m256i packed = _mm256_permutevar8x32_epi32(v, perm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k), packed);
    k += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(keep)));
  }
  for (; i < n; ++i) {
    out[k] = data[i];
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

__attribute__((target("avx2"))) size_t FilterValuesDoubleAvx2(
    const double* data, double l, double h, size_t n, double* out) {
  size_t k = 0;
  size_t i = 0;
  const __m256d vlo = _mm256_set1_pd(l);
  const __m256d vhi = _mm256_set1_pd(h);
  for (; i + 4 <= n; i += 4) {
    __m256d v = _mm256_loadu_pd(data + i);
    __m256d ge = _mm256_cmp_pd(v, vlo, _CMP_GE_OQ);
    __m256d le = _mm256_cmp_pd(v, vhi, _CMP_LE_OQ);
    int keep = _mm256_movemask_pd(_mm256_and_pd(ge, le));
    __m256i perm = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kPerm64[keep].idx));
    __m256d packed = _mm256_castsi256_pd(
        _mm256_permutevar8x32_epi32(_mm256_castpd_si256(v), perm));
    _mm256_storeu_pd(out + k, packed);
    k += static_cast<size_t>(__builtin_popcount(static_cast<unsigned>(keep)));
  }
  for (; i < n; ++i) {
    out[k] = data[i];
    k += static_cast<size_t>((data[i] >= l) & (data[i] <= h));
  }
  return k;
}

namespace {

/// Vector accumulator mirror of AggLanes: masked add, compare+blend
/// min/max. Must stay in lockstep with AggLanes::Add.
struct AggVecs {
  __m256d sum, mn, mx;
  int64_t count;
};

__attribute__((target("avx2"))) inline void AggVecsInit(AggVecs* a) {
  a->sum = _mm256_setzero_pd();
  a->mn = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  a->mx = _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  a->count = 0;
}

__attribute__((target("avx2"))) inline void AggVecsStep(AggVecs* a,
                                                        __m256d mask,
                                                        __m256d v) {
  a->sum = _mm256_add_pd(a->sum, _mm256_and_pd(v, mask));
  __m256d lt = _mm256_and_pd(_mm256_cmp_pd(v, a->mn, _CMP_LT_OQ), mask);
  a->mn = _mm256_blendv_pd(a->mn, v, lt);
  __m256d gt = _mm256_and_pd(_mm256_cmp_pd(v, a->mx, _CMP_GT_OQ), mask);
  a->mx = _mm256_blendv_pd(a->mx, v, gt);
  a->count += __builtin_popcount(
      static_cast<unsigned>(_mm256_movemask_pd(mask)));
}

/// Spills the vector lanes into AggLanes so the (shared) tail loop and lane
/// fold run identically to the scalar kernel.
__attribute__((target("avx2"))) inline void AggVecsSpill(const AggVecs& a,
                                                         AggLanes* lanes) {
  _mm256_storeu_pd(lanes->sum, a.sum);
  _mm256_storeu_pd(lanes->mn, a.mn);
  _mm256_storeu_pd(lanes->mx, a.mx);
  lanes->count = a.count;
}

/// (double)values[i..i+4) for int64 values — AVX2 has no packed int64→double
/// convert, so the casts are scalar; the accumulate stays vectorised.
__attribute__((target("avx2"))) inline __m256d LoadInt64AsDouble(
    const int64_t* values, size_t i) {
  return _mm256_set_pd(static_cast<double>(values[i + 3]),
                       static_cast<double>(values[i + 2]),
                       static_cast<double>(values[i + 1]),
                       static_cast<double>(values[i]));
}

__attribute__((target("avx2"))) inline __m256d MaskInt64Range(
    const int64_t* fdata, size_t i, __m256i vlo, __m256i vhi) {
  __m256i f =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fdata + i));
  __m256i lt = _mm256_cmpgt_epi64(vlo, f);
  __m256i gt = _mm256_cmpgt_epi64(f, vhi);
  // keep = ~(lt | gt); all-ones lanes for kept elements.
  return _mm256_castsi256_pd(_mm256_xor_si256(_mm256_or_si256(lt, gt),
                                              _mm256_set1_epi64x(-1)));
}

__attribute__((target("avx2"))) inline __m256d MaskDoubleRange(
    const double* fdata, size_t i, __m256d vlo, __m256d vhi) {
  __m256d f = _mm256_loadu_pd(fdata + i);
  return _mm256_and_pd(_mm256_cmp_pd(f, vlo, _CMP_GE_OQ),
                       _mm256_cmp_pd(f, vhi, _CMP_LE_OQ));
}

template <typename F, typename V>
void FilterAggTail(const F* fdata, F l, F h, const V* values, size_t i,
                   size_t n, AggLanes* lanes, FilterAggResult* out) {
  for (; i < n; ++i) {
    bool keep = (fdata[i] >= l) & (fdata[i] <= h);
    lanes->Add(i & 3, keep, static_cast<double>(values[i]));
  }
  lanes->Finish(out);
}

}  // namespace

__attribute__((target("avx2"))) void FilterAggInt64Int64Avx2(
    const int64_t* fdata, int64_t l, int64_t h, const int64_t* values,
    size_t n, FilterAggResult* out) {
  AggVecs acc;
  AggVecsInit(&acc);
  const __m256i vlo = _mm256_set1_epi64x(l);
  const __m256i vhi = _mm256_set1_epi64x(h);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    AggVecsStep(&acc, MaskInt64Range(fdata, i, vlo, vhi),
                LoadInt64AsDouble(values, i));
  }
  AggLanes lanes;
  AggVecsSpill(acc, &lanes);
  FilterAggTail(fdata, l, h, values, i, n, &lanes, out);
}

__attribute__((target("avx2"))) void FilterAggInt64DoubleAvx2(
    const int64_t* fdata, int64_t l, int64_t h, const double* values,
    size_t n, FilterAggResult* out) {
  AggVecs acc;
  AggVecsInit(&acc);
  const __m256i vlo = _mm256_set1_epi64x(l);
  const __m256i vhi = _mm256_set1_epi64x(h);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    AggVecsStep(&acc, MaskInt64Range(fdata, i, vlo, vhi),
                _mm256_loadu_pd(values + i));
  }
  AggLanes lanes;
  AggVecsSpill(acc, &lanes);
  FilterAggTail(fdata, l, h, values, i, n, &lanes, out);
}

__attribute__((target("avx2"))) void FilterAggDoubleInt64Avx2(
    const double* fdata, double l, double h, const int64_t* values, size_t n,
    FilterAggResult* out) {
  AggVecs acc;
  AggVecsInit(&acc);
  const __m256d vlo = _mm256_set1_pd(l);
  const __m256d vhi = _mm256_set1_pd(h);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    AggVecsStep(&acc, MaskDoubleRange(fdata, i, vlo, vhi),
                LoadInt64AsDouble(values, i));
  }
  AggLanes lanes;
  AggVecsSpill(acc, &lanes);
  FilterAggTail(fdata, l, h, values, i, n, &lanes, out);
}

__attribute__((target("avx2"))) void FilterAggDoubleDoubleAvx2(
    const double* fdata, double l, double h, const double* values, size_t n,
    FilterAggResult* out) {
  AggVecs acc;
  AggVecsInit(&acc);
  const __m256d vlo = _mm256_set1_pd(l);
  const __m256d vhi = _mm256_set1_pd(h);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    AggVecsStep(&acc, MaskDoubleRange(fdata, i, vlo, vhi),
                _mm256_loadu_pd(values + i));
  }
  AggLanes lanes;
  AggVecsSpill(acc, &lanes);
  FilterAggTail(fdata, l, h, values, i, n, &lanes, out);
}

bool HasAvx2() {
  static const bool has =
      !Avx2DisabledByEnv() && __builtin_cpu_supports("avx2") != 0;
  return has;
}

#else  // !defined(__x86_64__)

size_t SelectRangeInt64Avx2(const int64_t* data, int64_t l, int64_t h,
                            size_t begin, size_t end, size_t* out) {
  return SelectRangeInt64Scalar(data, l, h, begin, end, out);
}

size_t SelectRangeDoubleAvx2(const double* data, double l, double h,
                             size_t begin, size_t end, size_t* out) {
  return SelectRangeDoubleScalar(data, l, h, begin, end, out);
}

size_t FilterValuesInt64Avx2(const int64_t* data, int64_t l, int64_t h,
                             size_t n, int64_t* out) {
  return FilterValuesInt64Scalar(data, l, h, n, out);
}

size_t FilterValuesDoubleAvx2(const double* data, double l, double h,
                              size_t n, double* out) {
  return FilterValuesDoubleScalar(data, l, h, n, out);
}

void FilterAggInt64Int64Avx2(const int64_t* fdata, int64_t l, int64_t h,
                             const int64_t* values, size_t n,
                             FilterAggResult* out) {
  FilterAggInt64Int64Scalar(fdata, l, h, values, n, out);
}

void FilterAggInt64DoubleAvx2(const int64_t* fdata, int64_t l, int64_t h,
                              const double* values, size_t n,
                              FilterAggResult* out) {
  FilterAggInt64DoubleScalar(fdata, l, h, values, n, out);
}

void FilterAggDoubleInt64Avx2(const double* fdata, double l, double h,
                              const int64_t* values, size_t n,
                              FilterAggResult* out) {
  FilterAggDoubleInt64Scalar(fdata, l, h, values, n, out);
}

void FilterAggDoubleDoubleAvx2(const double* fdata, double l, double h,
                               const double* values, size_t n,
                               FilterAggResult* out) {
  FilterAggDoubleDoubleScalar(fdata, l, h, values, n, out);
}

bool HasAvx2() { return false; }

#endif  // defined(__x86_64__)

size_t SelectRangeInt64(const int64_t* data, int64_t l, int64_t h,
                        size_t begin, size_t end, size_t* out) {
  return HasAvx2() ? SelectRangeInt64Avx2(data, l, h, begin, end, out)
                   : SelectRangeInt64Scalar(data, l, h, begin, end, out);
}

size_t SelectRangeDouble(const double* data, double l, double h, size_t begin,
                         size_t end, size_t* out) {
  return HasAvx2() ? SelectRangeDoubleAvx2(data, l, h, begin, end, out)
                   : SelectRangeDoubleScalar(data, l, h, begin, end, out);
}

size_t FilterValuesInt64(const int64_t* data, int64_t l, int64_t h, size_t n,
                         int64_t* out) {
  return HasAvx2() ? FilterValuesInt64Avx2(data, l, h, n, out)
                   : FilterValuesInt64Scalar(data, l, h, n, out);
}

size_t FilterValuesDouble(const double* data, double l, double h, size_t n,
                          double* out) {
  return HasAvx2() ? FilterValuesDoubleAvx2(data, l, h, n, out)
                   : FilterValuesDoubleScalar(data, l, h, n, out);
}

void FilterAggInt64Int64(const int64_t* fdata, int64_t l, int64_t h,
                         const int64_t* values, size_t n,
                         FilterAggResult* out) {
  if (HasAvx2()) {
    FilterAggInt64Int64Avx2(fdata, l, h, values, n, out);
  } else {
    FilterAggInt64Int64Scalar(fdata, l, h, values, n, out);
  }
}

void FilterAggInt64Double(const int64_t* fdata, int64_t l, int64_t h,
                          const double* values, size_t n,
                          FilterAggResult* out) {
  if (HasAvx2()) {
    FilterAggInt64DoubleAvx2(fdata, l, h, values, n, out);
  } else {
    FilterAggInt64DoubleScalar(fdata, l, h, values, n, out);
  }
}

void FilterAggDoubleInt64(const double* fdata, double l, double h,
                          const int64_t* values, size_t n,
                          FilterAggResult* out) {
  if (HasAvx2()) {
    FilterAggDoubleInt64Avx2(fdata, l, h, values, n, out);
  } else {
    FilterAggDoubleInt64Scalar(fdata, l, h, values, n, out);
  }
}

void FilterAggDoubleDouble(const double* fdata, double l, double h,
                           const double* values, size_t n,
                           FilterAggResult* out) {
  if (HasAvx2()) {
    FilterAggDoubleDoubleAvx2(fdata, l, h, values, n, out);
  } else {
    FilterAggDoubleDoubleScalar(fdata, l, h, values, n, out);
  }
}

// --- Int64HashIndex ------------------------------------------------------

namespace {

/// Multiplicative hash with a finalizing xor-shift; good enough spread for
/// linear probing at 50% max load.
inline uint64_t HashInt64Key(int64_t key) {
  uint64_t h = static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull;
  return h ^ (h >> 29);
}

}  // namespace

size_t Int64HashIndex::SlotFor(int64_t key) const {
  size_t s = static_cast<size_t>(HashInt64Key(key)) & mask_;
  while (slot_used_[s] && slot_key_[s] != key) {
    s = (s + 1) & mask_;
  }
  return s;
}

void Int64HashIndex::Build(const int64_t* keys, const uint8_t* valid,
                           size_t n) {
  positions_.clear();
  size_t live = 0;
  for (size_t i = 0; i < n; ++i) {
    live += static_cast<size_t>(valid == nullptr || valid[i] != 0);
  }
  size_t capacity = 4;
  while (capacity < live * 2) capacity *= 2;
  slot_key_.assign(capacity, 0);
  slot_start_.assign(capacity, 0);
  slot_end_.assign(capacity, 0);
  slot_used_.assign(capacity, 0);
  mask_ = capacity - 1;
  if (live == 0) return;
  // Pass 1: claim slots, count rows per distinct key (in slot_end_).
  for (size_t i = 0; i < n; ++i) {
    if (valid != nullptr && valid[i] == 0) continue;
    size_t s = SlotFor(keys[i]);
    if (!slot_used_[s]) {
      slot_used_[s] = 1;
      slot_key_[s] = keys[i];
    }
    ++slot_end_[s];
  }
  // Prefix-sum the counts into ranges; slot_end_ becomes the fill cursor.
  uint32_t off = 0;
  for (size_t s = 0; s < capacity; ++s) {
    if (!slot_used_[s]) continue;
    slot_start_[s] = off;
    off += slot_end_[s];
    slot_end_[s] = slot_start_[s];
  }
  positions_.resize(off);
  // Pass 2: fill, ascending build positions within each key group — the
  // order the generic HashJoin emits.
  for (size_t i = 0; i < n; ++i) {
    if (valid != nullptr && valid[i] == 0) continue;
    size_t s = SlotFor(keys[i]);
    positions_[slot_end_[s]++] = static_cast<uint32_t>(i);
  }
}

void Int64HashIndex::Probe(const int64_t* keys, const uint8_t* valid,
                           size_t n, std::vector<size_t>* probe_positions,
                           std::vector<size_t>* build_positions) const {
  if (positions_.empty()) return;
  for (size_t i = 0; i < n; ++i) {
    if (valid != nullptr && valid[i] == 0) continue;
    int64_t key = keys[i];
    size_t s = static_cast<size_t>(HashInt64Key(key)) & mask_;
    while (slot_used_[s]) {
      if (slot_key_[s] == key) {
        for (uint32_t p = slot_start_[s]; p < slot_end_[s]; ++p) {
          probe_positions->push_back(i);
          build_positions->push_back(positions_[p]);
        }
        break;
      }
      s = (s + 1) & mask_;
    }
  }
}

}  // namespace kernel
}  // namespace datacell
