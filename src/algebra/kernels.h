#ifndef DATACELL_ALGEBRA_KERNELS_H_
#define DATACELL_ALGEBRA_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace datacell {
/// Tight per-type selection kernels under the algebra operators. These work
/// on raw buffers (no Bat, no nulls — callers handle the null path) so the
/// compiler sees plain loops over contiguous data.
///
/// The scalar variants use the branch-free compress idiom
/// (`out[k] = i; k += predicate`) whose loop-carried dependence on `k`
/// defeats autovectorisation without AVX-512 compress stores — hence the
/// explicit AVX2 variants: compare, movemask, a 16-entry lane-index LUT and
/// four unconditional stores per block. Selected at runtime via
/// __builtin_cpu_supports, so the binary stays portable.
namespace kernel {

/// True when the running CPU supports AVX2 (result cached after first call).
bool HasAvx2();

/// Writes every position i in [begin, end) with l <= data[i] <= h into
/// `out`, which must have room for end - begin entries; returns the count.
/// Bounds are inclusive. All variants of one type produce identical output.
size_t SelectRangeInt64Scalar(const int64_t* data, int64_t l, int64_t h,
                              size_t begin, size_t end, size_t* out);
size_t SelectRangeInt64Avx2(const int64_t* data, int64_t l, int64_t h,
                            size_t begin, size_t end, size_t* out);
/// Runtime-dispatched: AVX2 when available, scalar otherwise.
size_t SelectRangeInt64(const int64_t* data, int64_t l, int64_t h,
                        size_t begin, size_t end, size_t* out);

/// Double range select; NaN never qualifies (matches the scalar comparison
/// and the ordered-quiet AVX2 compares).
size_t SelectRangeDoubleScalar(const double* data, double l, double h,
                               size_t begin, size_t end, size_t* out);
size_t SelectRangeDoubleAvx2(const double* data, double l, double h,
                             size_t begin, size_t end, size_t* out);
size_t SelectRangeDouble(const double* data, double l, double h, size_t begin,
                         size_t end, size_t* out);

}  // namespace kernel
}  // namespace datacell

#endif  // DATACELL_ALGEBRA_KERNELS_H_
