#ifndef DATACELL_ALGEBRA_KERNELS_H_
#define DATACELL_ALGEBRA_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace datacell {
/// Tight per-type selection kernels under the algebra operators. These work
/// on raw buffers (no Bat, no nulls — callers handle the null path) so the
/// compiler sees plain loops over contiguous data.
///
/// The scalar variants use the branch-free compress idiom
/// (`out[k] = i; k += predicate`) whose loop-carried dependence on `k`
/// defeats autovectorisation without AVX-512 compress stores — hence the
/// explicit AVX2 variants: compare, movemask, a 16-entry lane-index LUT and
/// four unconditional stores per block. Selected at runtime via
/// __builtin_cpu_supports, so the binary stays portable.
namespace kernel {

/// True when the running CPU supports AVX2 (result cached after first call).
/// Setting the environment variable DATACELL_DISABLE_AVX2 (to anything but
/// "0" or empty) forces the scalar paths — the CI knob that keeps scalar
/// and SIMD variants verified against each other on AVX2 boxes.
bool HasAvx2();

/// Writes every position i in [begin, end) with l <= data[i] <= h into
/// `out`, which must have room for end - begin entries; returns the count.
/// Bounds are inclusive. All variants of one type produce identical output.
size_t SelectRangeInt64Scalar(const int64_t* data, int64_t l, int64_t h,
                              size_t begin, size_t end, size_t* out);
size_t SelectRangeInt64Avx2(const int64_t* data, int64_t l, int64_t h,
                            size_t begin, size_t end, size_t* out);
/// Runtime-dispatched: AVX2 when available, scalar otherwise.
size_t SelectRangeInt64(const int64_t* data, int64_t l, int64_t h,
                        size_t begin, size_t end, size_t* out);

/// Double range select; NaN never qualifies (matches the scalar comparison
/// and the ordered-quiet AVX2 compares).
size_t SelectRangeDoubleScalar(const double* data, double l, double h,
                               size_t begin, size_t end, size_t* out);
size_t SelectRangeDoubleAvx2(const double* data, double l, double h,
                             size_t begin, size_t end, size_t* out);
size_t SelectRangeDouble(const double* data, double l, double h, size_t begin,
                         size_t end, size_t* out);

// --- Fused filter→project (value compress) -----------------------------
//
// Writes the qualifying *values* (l <= data[i] <= h, positions in order)
// directly into `out` instead of materialising a position list first — the
// specialized pipeline's one-pass select+gather for `select x .. where
// x <op> literal`. `out` must have room for n values; returns the count.
// All variants of one type produce identical output.

size_t FilterValuesInt64Scalar(const int64_t* data, int64_t l, int64_t h,
                               size_t n, int64_t* out);
size_t FilterValuesInt64Avx2(const int64_t* data, int64_t l, int64_t h,
                             size_t n, int64_t* out);
size_t FilterValuesInt64(const int64_t* data, int64_t l, int64_t h, size_t n,
                         int64_t* out);

size_t FilterValuesDoubleScalar(const double* data, double l, double h,
                                size_t n, double* out);
size_t FilterValuesDoubleAvx2(const double* data, double l, double h, size_t n,
                              double* out);
size_t FilterValuesDouble(const double* data, double l, double h, size_t n,
                          double* out);

// --- Fused filter→aggregate --------------------------------------------
//
// One pass over the filter column computing count/sum/min/max of the value
// column restricted to l <= fdata[i] <= h, without materialising the
// selection. The value column is read as double (int64 inputs are cast per
// element, exactly like the generic aggregator).
//
// All variants keep four independent accumulator lanes merged as
// (a0+a1)+(a2+a3) at the end, so the scalar and AVX2 variants are
// bit-identical to each other. The lane sums associate differently from the
// sequential generic aggregator, so the *sum* may differ from the
// interpreter's in the last ulp for values not exactly representable — the
// same caveat the morsel-parallel aggregation already carries (operators.h).
// min/max use `v < min` / `v > max` compare-updates: NaN values are counted
// and poison the sum but never become min/max, matching AggPartial.
struct FilterAggResult {
  int64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

void FilterAggInt64Int64Scalar(const int64_t* fdata, int64_t l, int64_t h,
                               const int64_t* values, size_t n,
                               FilterAggResult* out);
void FilterAggInt64Int64Avx2(const int64_t* fdata, int64_t l, int64_t h,
                             const int64_t* values, size_t n,
                             FilterAggResult* out);
void FilterAggInt64Int64(const int64_t* fdata, int64_t l, int64_t h,
                         const int64_t* values, size_t n, FilterAggResult* out);

void FilterAggInt64DoubleScalar(const int64_t* fdata, int64_t l, int64_t h,
                                const double* values, size_t n,
                                FilterAggResult* out);
void FilterAggInt64DoubleAvx2(const int64_t* fdata, int64_t l, int64_t h,
                              const double* values, size_t n,
                              FilterAggResult* out);
void FilterAggInt64Double(const int64_t* fdata, int64_t l, int64_t h,
                          const double* values, size_t n,
                          FilterAggResult* out);

void FilterAggDoubleInt64Scalar(const double* fdata, double l, double h,
                                const int64_t* values, size_t n,
                                FilterAggResult* out);
void FilterAggDoubleInt64Avx2(const double* fdata, double l, double h,
                              const int64_t* values, size_t n,
                              FilterAggResult* out);
void FilterAggDoubleInt64(const double* fdata, double l, double h,
                          const int64_t* values, size_t n,
                          FilterAggResult* out);

void FilterAggDoubleDoubleScalar(const double* fdata, double l, double h,
                                 const double* values, size_t n,
                                 FilterAggResult* out);
void FilterAggDoubleDoubleAvx2(const double* fdata, double l, double h,
                               const double* values, size_t n,
                               FilterAggResult* out);
void FilterAggDoubleDouble(const double* fdata, double l, double h,
                           const double* values, size_t n,
                           FilterAggResult* out);

// --- Specialized hash-join probe ---------------------------------------

/// Open-addressing hash index over an int64 key column, built once at query
/// registration from the static (build) side of a stream⋈table join and
/// probed per firing. Matches the generic HashJoin operator's output
/// contract: probe rows in input order, and for each probe row the matching
/// build positions in ascending order; null keys (marked invalid in the
/// optional validity mask, 1 = valid) neither build nor probe.
class Int64HashIndex {
 public:
  /// (Re)builds the index over keys[0..n). `valid` may be null (no nulls).
  void Build(const int64_t* keys, const uint8_t* valid, size_t n);

  /// Appends one (probe position, build position) pair per match.
  void Probe(const int64_t* keys, const uint8_t* valid, size_t n,
             std::vector<size_t>* probe_positions,
             std::vector<size_t>* build_positions) const;

  /// Number of (non-null) build rows indexed.
  size_t num_entries() const { return positions_.size(); }

  /// Upper bound on memory_bytes() after Build over `rows` keys — what the
  /// pass-4 analyzer prices join indexes at. Mirrors Build's sizing: slot
  /// arrays at the pow2 capacity >= max(4, 2*rows), positions_ with the
  /// 2x geometric push_back slack.
  static size_t EstimatedBuildBytes(size_t rows) {
    size_t capacity = 4;
    while (capacity < rows * 2) capacity *= 2;
    return capacity * (sizeof(int64_t) + 2 * sizeof(uint32_t) +
                       sizeof(uint8_t)) +
           2 * rows * sizeof(uint32_t);
  }

  /// Bytes held by the slot and position arrays — the pass-4 state
  /// accounting hook (compared against the static join-state bound).
  size_t memory_bytes() const {
    return slot_key_.capacity() * sizeof(int64_t) +
           slot_start_.capacity() * sizeof(uint32_t) +
           slot_end_.capacity() * sizeof(uint32_t) +
           slot_used_.capacity() * sizeof(uint8_t) +
           positions_.capacity() * sizeof(uint32_t);
  }

 private:
  size_t SlotFor(int64_t key) const;

  // Slot arrays (power-of-two capacity, linear probing): the key, a
  // [start, end) range into positions_, and an occupancy flag.
  std::vector<int64_t> slot_key_;
  std::vector<uint32_t> slot_start_;
  std::vector<uint32_t> slot_end_;
  std::vector<uint8_t> slot_used_;
  size_t mask_ = 0;
  // Build positions grouped by key, ascending within each group.
  std::vector<uint32_t> positions_;
};

}  // namespace kernel
}  // namespace datacell

#endif  // DATACELL_ALGEBRA_KERNELS_H_
