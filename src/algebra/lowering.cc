#include "algebra/lowering.h"

#include <cmath>
#include <limits>

namespace datacell {

bool MatchLiteral(const Expr& e, Value* out) {
  if (e.kind() == ExprKind::kLiteral) {
    *out = e.literal();
    return true;
  }
  if (e.kind() == ExprKind::kUnary && e.unary_op() == UnaryOp::kNeg &&
      e.operand()->kind() == ExprKind::kLiteral) {
    const Value& v = e.operand()->literal();
    if (v.is_int64()) {
      *out = Value::Int64(-v.int64_value());
      return true;
    }
    if (v.is_double()) {
      *out = Value::Double(-v.double_value());
      return true;
    }
  }
  return false;
}

bool MatchComparison(const Expr& e, const Schema& input, size_t* column,
                     BinaryOp* op, Value* literal) {
  if (e.kind() != ExprKind::kBinary) return false;
  BinaryOp bop = e.binary_op();
  if (bop != BinaryOp::kEq && bop != BinaryOp::kLt && bop != BinaryOp::kLe &&
      bop != BinaryOp::kGt && bop != BinaryOp::kGe) {
    return false;
  }
  const Expr* col = nullptr;
  Value lit;
  if (e.left()->kind() == ExprKind::kColumnRef &&
      MatchLiteral(*e.right(), &lit)) {
    col = e.left().get();
  } else if (e.right()->kind() == ExprKind::kColumnRef &&
             MatchLiteral(*e.left(), &lit)) {
    col = e.right().get();
    // Mirror the comparison so the column is always on the left.
    switch (bop) {
      case BinaryOp::kLt: bop = BinaryOp::kGt; break;
      case BinaryOp::kLe: bop = BinaryOp::kGe; break;
      case BinaryOp::kGt: bop = BinaryOp::kLt; break;
      case BinaryOp::kGe: bop = BinaryOp::kLe; break;
      default: break;
    }
  } else {
    return false;
  }
  if (lit.is_null()) return false;
  if (col->column_index() >= input.num_fields()) return false;
  *column = col->column_index();
  *op = bop;
  *literal = std::move(lit);
  return true;
}

bool LowerComparison(const Schema& input, size_t column, BinaryOp op,
                     const Value& literal, LoweredSelect* out) {
  DataType col_type = input.field(column).type;
  out->column = column;
  if (col_type == DataType::kString) {
    if (op != BinaryOp::kEq || !literal.is_string()) return false;
    out->is_string = true;
    out->str_value = literal.string_value();
    return true;
  }
  if (IsIntegerBacked(col_type)) {
    // int vs double literal: generic path (timestamps are int64-backed).
    if (!literal.is_int64() && !literal.is_timestamp()) return false;
    int64_t v = literal.int64_value();
    switch (op) {
      case BinaryOp::kEq: out->ilo = out->ihi = v; break;
      case BinaryOp::kLe: out->ihi = v; break;
      case BinaryOp::kGe: out->ilo = v; break;
      case BinaryOp::kLt:
        if (v == std::numeric_limits<int64_t>::min()) out->empty = true;
        else out->ihi = v - 1;
        break;
      case BinaryOp::kGt:
        if (v == std::numeric_limits<int64_t>::max()) out->empty = true;
        else out->ilo = v + 1;
        break;
      default: return false;
    }
    return true;
  }
  if (col_type == DataType::kDouble) {
    double v;
    if (literal.is_double()) {
      v = literal.double_value();
    } else if (literal.is_int64()) {
      v = static_cast<double>(literal.int64_value());
      // A 64-bit int that doesn't round-trip through double would silently
      // shift the bound; leave those to the generic evaluator.
      if (static_cast<int64_t>(v) != literal.int64_value()) return false;
    } else {
      return false;
    }
    if (std::isnan(v)) return false;
    switch (op) {
      case BinaryOp::kEq: out->dlo = out->dhi = v; break;
      case BinaryOp::kLe: out->dhi = v; break;
      case BinaryOp::kGe: out->dlo = v; break;
      case BinaryOp::kLt:
        // The kernel bound is inclusive; the next representable double down
        // expresses the strict inequality exactly.
        out->dhi = std::nextafter(v, -std::numeric_limits<double>::infinity());
        break;
      case BinaryOp::kGt:
        out->dlo = std::nextafter(v, std::numeric_limits<double>::infinity());
        break;
      default: return false;
    }
    return true;
  }
  return false;
}

void IntersectBounds(LoweredSelect* into, const LoweredSelect& other) {
  into->empty = into->empty || other.empty;
  if (other.ilo && (!into->ilo || *other.ilo > *into->ilo)) into->ilo = other.ilo;
  if (other.ihi && (!into->ihi || *other.ihi < *into->ihi)) into->ihi = other.ihi;
  if (other.dlo && (!into->dlo || *other.dlo > *into->dlo)) into->dlo = other.dlo;
  if (other.dhi && (!into->dhi || *other.dhi < *into->dhi)) into->dhi = other.dhi;
}

std::optional<LoweredSelect> TryLowerSelect(const Expr& e,
                                            const Schema& input) {
  size_t column;
  BinaryOp op;
  Value literal;
  if (MatchComparison(e, input, &column, &op, &literal)) {
    LoweredSelect out;
    if (!LowerComparison(input, column, op, literal, &out)) return std::nullopt;
    return out;
  }
  if (e.kind() == ExprKind::kBinary && e.binary_op() == BinaryOp::kAnd) {
    auto lhs = TryLowerSelect(*e.left(), input);
    if (!lhs || lhs->is_string) return std::nullopt;
    auto rhs = TryLowerSelect(*e.right(), input);
    if (!rhs || rhs->is_string) return std::nullopt;
    if (lhs->column != rhs->column) return std::nullopt;
    IntersectBounds(&*lhs, *rhs);
    return lhs;
  }
  return std::nullopt;
}

std::vector<size_t> RunLoweredSelect(const LoweredSelect& sel,
                                     const Table& input,
                                     const ExecContext& ctx) {
  if (sel.empty) return {};
  const Bat& col = *input.column(sel.column);
  if (sel.is_string) return SelectEqString(col, sel.str_value, ctx);
  if (col.type() == DataType::kDouble) {
    return SelectRangeDouble(col, sel.dlo, sel.dhi, ctx);
  }
  return SelectRangeInt64(col, sel.ilo, sel.ihi, ctx);
}

}  // namespace datacell
