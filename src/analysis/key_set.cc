#include "analysis/key_set.h"

namespace datacell {
namespace analysis {

KeyFlow KeyFlow::StreamScan(size_t input, size_t num_columns) {
  KeyFlow f;
  f.has_stream = true;
  f.stream_inputs.insert(input);
  f.origins.resize(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    f.origins[c] = ColOrigin{input, c};
  }
  return f;
}

KeyFlow KeyFlow::StaticScan(const std::string& relation, size_t num_columns) {
  KeyFlow f;
  f.origins.resize(num_columns);
  f.static_relations.push_back(relation);
  return f;
}

KeyFlow KeyFlow::Pinned(std::string reason) {
  KeyFlow f;
  f.req = Req::kPinned;
  f.pinned_reason = std::move(reason);
  return f;
}

bool KeyFlow::RequireKey(size_t input, size_t column) {
  if (pinned()) return false;
  auto [it, inserted] = required.emplace(input, column);
  if (!inserted && it->second != column) {
    req = Req::kPinned;
    pinned_reason = "input #" + std::to_string(input) +
                    " would need to be split on two different columns";
    return false;
  }
  req = Req::kKeyed;
  return true;
}

bool KeyFlow::CombineConstraints(const KeyFlow& other) {
  has_stream = has_stream || other.has_stream;
  for (const std::string& r : other.static_relations) {
    static_relations.push_back(r);
  }
  for (size_t b : other.broadcast_inputs) broadcast_inputs.insert(b);
  for (size_t s : other.stream_inputs) stream_inputs.insert(s);
  if (pinned()) return false;
  if (other.pinned()) {
    req = Req::kPinned;
    pinned_reason = other.pinned_reason;
    return false;
  }
  for (const auto& [input, column] : other.required) {
    if (!RequireKey(input, column)) return false;
  }
  if (other.req == Req::kKeyed && req == Req::kAny) req = Req::kKeyed;
  return true;
}

}  // namespace analysis
}  // namespace datacell
