#ifndef DATACELL_ANALYSIS_PLAN_ANALYZER_H_
#define DATACELL_ANALYSIS_PLAN_ANALYZER_H_

#include <optional>
#include <string>

#include "algebra/plan.h"
#include "analysis/diagnostic.h"
#include "storage/schema.h"

namespace datacell {
namespace analysis {

/// Pass 1: bottom-up type/schema inference over a plan tree. Re-derives the
/// type of every expression from the child schemas and checks each node's
/// structural invariants (column resolution, predicate boolean-ness,
/// join-key/union compatibility, aggregate input types). Everything the
/// interpreter would reject with a runtime TypeError — and several shapes it
/// would abort on, like arithmetic over a string BAT — surfaces here as a
/// positioned Diagnostic instead.
///
/// The analyzer is deliberately exactly as strict as the SQL binder: a plan
/// compiled from accepted SQL always passes, so running it at registration
/// can only reject plans that would misbehave at fire time.

/// Checks `expr` against `input` and returns its inferred type, appending
/// findings to `report`. Returns nullopt when the expression is too broken
/// to type (a diagnostic has been emitted). `where` names the plan node for
/// the diagnostics' object field.
std::optional<DataType> CheckExpr(const Expr& expr, const Schema& input,
                                  const std::string& where,
                                  AnalysisReport* report);

/// Recursively analyzes `plan`, appending findings to `report`. Returns the
/// (trusted) output schema of the node for parent checks.
void AnalyzePlanNode(const PlanNode& plan, AnalysisReport* report);

/// Whole-plan convenience wrapper: fresh report over one tree.
AnalysisReport AnalyzePlan(const PlanNode& plan);

/// Checks a consume/basket predicate: must type-check over `input` and be
/// boolean. Used by factory registration for ContinuousInput predicates.
void CheckPredicate(const Expr& pred, const Schema& input,
                    const std::string& where, AnalysisReport* report);

}  // namespace analysis
}  // namespace datacell

#endif  // DATACELL_ANALYSIS_PLAN_ANALYZER_H_
