#ifndef DATACELL_ANALYSIS_INTERVAL_H_
#define DATACELL_ANALYSIS_INTERVAL_H_

#include <optional>
#include <string>
#include <vector>

#include "algebra/expression.h"

namespace datacell {
namespace analysis {

/// A set of disjoint numeric intervals over one column's domain, used to
/// reason about the predicates of a disjoint-predicate chain (§3.2): two
/// chained predicates whose interval sets intersect shadow each other (the
/// first link consumes tuples the second expected), and a non-covering
/// union means the chain tail silently drops part of the domain.
///
/// Modelled shapes: `col <cmp> numeric-literal` (either operand order),
/// `<>`, AND/OR combinations over one column. Anything else — string
/// comparisons, multiple columns, function calls — makes the predicate
/// unanalyzable and the chain checks skip it (no false positives).

/// One closed/open interval; +-infinity encoded by `unbounded_*`.
struct Interval {
  double lo = 0;
  double hi = 0;
  bool lo_open = false;
  bool hi_open = false;
  bool unbounded_lo = false;
  bool unbounded_hi = false;

  bool Contains(double v) const;
  std::string ToString() const;
};

class IntervalSet {
 public:
  /// The empty set.
  IntervalSet() = default;

  static IntervalSet All();
  static IntervalSet Single(Interval iv);

  /// Models `pred` as an interval set over the single column it references.
  /// Returns nullopt when the predicate shape is out of the fragment.
  /// `*column_index` receives the referenced column.
  static std::optional<IntervalSet> FromPredicate(const Expr& pred,
                                                  size_t* column_index);

  IntervalSet Union(const IntervalSet& other) const;
  IntervalSet Intersect(const IntervalSet& other) const;
  IntervalSet Complement() const;

  bool IsEmpty() const { return intervals_.empty(); }
  bool IsAll() const;
  bool Contains(double v) const;
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// "[10, 20) ∪ (30, +inf)" — for diagnostics. "∅" when empty.
  std::string ToString() const;

 private:
  /// Sorted, disjoint, non-adjacent intervals.
  std::vector<Interval> intervals_;

  void Normalize();
};

}  // namespace analysis
}  // namespace datacell

#endif  // DATACELL_ANALYSIS_INTERVAL_H_
