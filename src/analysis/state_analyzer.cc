#include "analysis/state_analyzer.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>

#include "algebra/kernels.h"
#include "common/string_util.h"

namespace datacell {
namespace analysis {

namespace {

/// Hash-table bookkeeping bytes per tracked row (slot + position arrays of
/// the build index, or the per-key entry of a group/distinct table). One
/// shared constant keeps static bounds and the runtime accounting hooks
/// comparable.
constexpr int64_t kPerEntryOverhead = 16;

SourceLoc FindExprLoc(const Expr& e) {
  if (e.loc().valid()) return e.loc();
  switch (e.kind()) {
    case ExprKind::kBinary: {
      SourceLoc l = FindExprLoc(*e.left());
      if (l.valid()) return l;
      return FindExprLoc(*e.right());
    }
    case ExprKind::kUnary:
    case ExprKind::kFunction:
      return FindExprLoc(*e.operand());
    case ExprKind::kCase: {
      for (size_t i = 0; i < e.num_when_branches(); ++i) {
        SourceLoc l = FindExprLoc(*e.when_cond(i));
        if (l.valid()) return l;
        l = FindExprLoc(*e.when_value(i));
        if (l.valid()) return l;
      }
      return FindExprLoc(*e.else_value());
    }
    default:
      return {};
  }
}

/// True when any Scan under `node` reads one of the query's stream inputs.
bool HasStreamScan(const PlanNode& node,
                   const std::vector<sql::ContinuousInput>& inputs) {
  if (node.kind() == PlanKind::kScan) {
    for (const sql::ContinuousInput& in : inputs) {
      if (EqualsIgnoreCase(in.bind_name, node.scan_relation())) return true;
    }
    return false;
  }
  for (const PlanPtr& c : node.children()) {
    if (HasStreamScan(*c, inputs)) return true;
  }
  return false;
}

/// Provenance of output column `col` of `node`, traced down to a stream
/// input's basket column: (basket lower-name, basket column index). nullopt
/// when the column is computed, joins ambiguously, or reaches a static
/// relation.
std::optional<std::pair<std::string, size_t>> ResolveColumn(
    const PlanNode& node, size_t col,
    const std::vector<sql::ContinuousInput>& inputs) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      for (const sql::ContinuousInput& in : inputs) {
        if (!EqualsIgnoreCase(in.bind_name, node.scan_relation())) continue;
        if (col >= node.output_schema().num_fields()) return std::nullopt;
        const std::string& name = node.output_schema().field(col).name;
        std::optional<size_t> idx = in.basket_schema.IndexOf(name);
        if (!idx.has_value()) return std::nullopt;
        return std::make_pair(ToLower(in.basket), *idx);
      }
      return std::nullopt;
    }
    case PlanKind::kFilter:
    case PlanKind::kSort:
    case PlanKind::kLimit:
    case PlanKind::kDistinct:
      return ResolveColumn(*node.child(), col, inputs);
    case PlanKind::kProject: {
      if (col >= node.projections().size()) return std::nullopt;
      const Expr& e = *node.projections()[col];
      if (e.kind() != ExprKind::kColumnRef) return std::nullopt;
      return ResolveColumn(*node.child(), e.column_index(), inputs);
    }
    case PlanKind::kHashJoin: {
      size_t left_arity = node.child(0)->output_schema().num_fields();
      if (col < left_arity) return ResolveColumn(*node.child(0), col, inputs);
      return ResolveColumn(*node.child(1), col - left_arity, inputs);
    }
    case PlanKind::kAggregate: {
      if (col >= node.group_columns().size()) return std::nullopt;
      return ResolveColumn(*node.child(), node.group_columns()[col], inputs);
    }
    case PlanKind::kUnion:
      return std::nullopt;
  }
  return std::nullopt;
}

/// Accumulator bytes of one aggregate: avg keeps sum + count, the rest one
/// 8-byte cell.
int64_t AccumulatorBytes(const AggSpec& a) {
  return a.func == AggFunc::kAvg ? 16 : 8;
}

/// Checked product; nullopt on overflow (treat as symbolic).
std::optional<int64_t> CheckedMul(int64_t a, int64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > std::numeric_limits<int64_t>::max() / b) return std::nullopt;
  return a * b;
}

struct Walker {
  const sql::CompiledQuery& query;
  const CardinalityMap& cardinalities;
  const StateAnalyzerOptions& options;
  AnalysisReport* report;
  std::vector<OperatorStateBound>* ops;

  /// Cardinality hint for output column `col` of `node`'s child chain, via
  /// provenance. Also names the column for diagnostics.
  std::optional<int64_t> HintFor(const PlanNode& below, size_t col,
                                 std::string* col_name) const {
    std::optional<std::pair<std::string, size_t>> src =
        ResolveColumn(below, col, query.inputs);
    if (!src.has_value()) return std::nullopt;
    auto basket = cardinalities.find(src->first);
    if (col_name != nullptr) *col_name = src->first;
    if (basket == cardinalities.end()) return std::nullopt;
    auto hint = basket->second.find(src->second);
    if (hint == basket->second.end()) return std::nullopt;
    return hint->second;
  }

  /// Key-space bound shared by group-by and distinct: every key column must
  /// carry a cardinality hint; the bound is the product of the hints times
  /// the per-key bytes. Falls back to window-bounded inside windowed
  /// queries, else unbounded (S003).
  StateBound KeyedBound(const PlanNode& node, const PlanNode& below,
                        const std::vector<size_t>& key_columns,
                        int64_t per_key_bytes, const char* what) {
    std::optional<int64_t> keys = 1;
    std::string unhinted;
    for (size_t col : key_columns) {
      std::optional<int64_t> hint = HintFor(below, col, nullptr);
      if (!hint.has_value()) {
        if (col < below.output_schema().num_fields()) {
          unhinted = below.output_schema().field(col).name;
        }
        keys = std::nullopt;
        break;
      }
      if (keys.has_value()) keys = CheckedMul(*keys, *hint);
    }
    SourceLoc loc = FindPlanLoc(node);
    if (keys.has_value()) {
      std::optional<int64_t> bytes = CheckedMul(*keys, per_key_bytes);
      std::string detail = std::to_string(*keys) + " keys x " +
                           std::to_string(per_key_bytes) + " B/key (hinted)";
      report->Add(DiagCode::kCardinalityHintUsed, Severity::kNote,
                  std::string(what) + " key space bounded by hint: " + detail,
                  loc);
      if (!bytes.has_value()) {
        return StateBound::Key(0, true, detail + "; byte bound overflows");
      }
      return StateBound::Key(*bytes, false, detail);
    }
    if (query.window.kind != sql::WindowSpec::Kind::kNone) {
      // Bounded by the window buffer regardless of the key space: the
      // operator only ever sees one window's rows.
      return WindowScaledBound(per_key_bytes,
                               std::string(what) + " keys within one window");
    }
    report->Add(
        DiagCode::kUnboundedKeyState, Severity::kWarning,
        std::string(what) + " state grows with the distinct key history" +
            (unhinted.empty()
                 ? ""
                 : " — declare WITH (cardinality(" + unhinted + ") = N)"),
        loc);
    return StateBound::Unbounded(std::string(what) + " on unhinted keys");
  }

  /// A per-row cost bounded by the window size: numeric for count windows
  /// (size + slide covers both evaluation modes' buffering), symbolic for
  /// time windows (rows are rate-dependent).
  StateBound WindowScaledBound(int64_t per_row_bytes,
                               std::string what) const {
    const sql::WindowSpec& w = query.window;
    if (w.kind == sql::WindowSpec::Kind::kCount) {
      int64_t rows = w.size + w.slide;
      std::optional<int64_t> bytes = CheckedMul(rows, per_row_bytes);
      std::string detail = what + ": " + std::to_string(rows) + " rows x " +
                           std::to_string(per_row_bytes) + " B";
      if (!bytes.has_value()) return StateBound::Window(0, true, detail);
      return StateBound::Window(*bytes, false, detail);
    }
    return StateBound::Window(
        0, true,
        what + ": rows within " + std::to_string(w.size) +
            " us are rate-dependent");
  }

  void Visit(const PlanNode& node) {
    for (const PlanPtr& c : node.children()) Visit(*c);
    switch (node.kind()) {
      case PlanKind::kLimit: {
        OperatorStateBound op;
        op.op = "Limit";
        op.loc = FindPlanLoc(node);
        op.bound = StateBound::Constant(8, "LIMIT row counter");
        ops->push_back(std::move(op));
        break;
      }
      case PlanKind::kAggregate: {
        const PlanNode& below = *node.child();
        int64_t accum = 0;
        for (const AggSpec& a : node.aggregates()) {
          accum += AccumulatorBytes(a);
        }
        OperatorStateBound op;
        op.loc = FindPlanLoc(node);
        if (node.group_columns().empty()) {
          op.op = "Aggregate(scalar)";
          op.bound = StateBound::Constant(
              accum, std::to_string(node.aggregates().size()) +
                         " scalar accumulators");
        } else {
          op.op = "Aggregate(group-by)";
          int64_t key_bytes = 0;
          for (size_t col : node.group_columns()) {
            if (col < below.output_schema().num_fields()) {
              Schema one;
              one.AddField(below.output_schema().field(col));
              key_bytes += one.EstimatedRowBytes(options.string_bytes);
            }
          }
          op.bound =
              KeyedBound(node, below, node.group_columns(),
                         key_bytes + accum + kPerEntryOverhead, "group-by");
        }
        ops->push_back(std::move(op));
        break;
      }
      case PlanKind::kDistinct: {
        const PlanNode& below = *node.child();
        std::vector<size_t> all(below.output_schema().num_fields());
        for (size_t i = 0; i < all.size(); ++i) all[i] = i;
        OperatorStateBound op;
        op.op = "Distinct";
        op.loc = FindPlanLoc(node);
        op.bound = KeyedBound(
            node, below, all,
            below.output_schema().EstimatedRowBytes(options.string_bytes) +
                kPerEntryOverhead,
            "distinct");
        ops->push_back(std::move(op));
        break;
      }
      case PlanKind::kHashJoin: {
        bool left_stream = HasStreamScan(*node.child(0), query.inputs);
        bool right_stream = HasStreamScan(*node.child(1), query.inputs);
        OperatorStateBound op;
        op.loc = FindPlanLoc(node);
        if (left_stream && right_stream) {
          op.op = "HashJoin(stream-stream)";
          op.bound = StateBound::Unbounded(
              "unwindowed stream-stream join retains both full histories");
          report->Add(DiagCode::kUnboundedJoinState, Severity::kWarning,
                      "stream-stream join without a window: join state "
                      "grows with both stream histories",
                      op.loc);
        } else {
          // Stream x static (or static x static under a stream elsewhere):
          // the build side is the static one, bounded by the relation's
          // current size. Catalog tables are append-only, so the figure is
          // a registration-time snapshot — symbolic when unknown.
          const PlanNode& build =
              left_stream ? *node.child(1) : *node.child(0);
          std::string rel;
          for (const std::string& r : build.InputRelations()) rel = r;
          auto rows = options.static_rows.find(ToLower(rel));
          int64_t per_row =
              build.output_schema().EstimatedRowBytes(options.string_bytes);
          op.op = "HashJoin(build '" + rel + "')";
          if (rows != options.static_rows.end()) {
            // Build-side rows plus the hash index sized exactly as the
            // kernel sizes it (pow2 slot arrays dominate small tables, so a
            // flat per-entry constant would undershoot there).
            int64_t index_bytes =
                static_cast<int64_t>(kernel::Int64HashIndex::
                    EstimatedBuildBytes(static_cast<size_t>(rows->second)));
            std::optional<int64_t> bytes =
                CheckedMul(rows->second, per_row);
            if (bytes.has_value()) *bytes += index_bytes;
            std::string detail = "static build side '" + rel + "': " +
                                 std::to_string(rows->second) + " rows x " +
                                 std::to_string(per_row) + " B + " +
                                 std::to_string(index_bytes) + " B index";
            op.bound = bytes.has_value()
                           ? StateBound::Key(*bytes, false, detail)
                           : StateBound::Key(0, true, detail);
          } else {
            op.bound = StateBound::Key(
                0, true, "static build side '" + rel + "' of unknown size");
          }
        }
        ops->push_back(std::move(op));
        break;
      }
      case PlanKind::kScan:
      case PlanKind::kFilter:
      case PlanKind::kProject:
      case PlanKind::kSort:  // re-sorts each fired batch; no carried state
      case PlanKind::kUnion:
        break;
    }
  }
};

}  // namespace

SourceLoc FindPlanLoc(const PlanNode& plan) {
  if (plan.predicate() != nullptr) {
    SourceLoc l = FindExprLoc(*plan.predicate());
    if (l.valid()) return l;
  }
  for (const ExprPtr& p : plan.projections()) {
    SourceLoc l = FindExprLoc(*p);
    if (l.valid()) return l;
  }
  for (const PlanPtr& c : plan.children()) {
    SourceLoc l = FindPlanLoc(*c);
    if (l.valid()) return l;
  }
  return {};
}

Result<StateReport> AnalyzeStateBounds(const sql::CompiledQuery& query,
                                       const CardinalityMap& cardinalities,
                                       const StateAnalyzerOptions& options,
                                       AnalysisReport* report) {
  if (query.plan == nullptr) {
    return Status::InvalidArgument("state analysis needs a compiled plan");
  }
  StateReport out;
  out.shard_copies = options.shard_copies < 1 ? 1 : options.shard_copies;
  if (!query.continuous) {
    out.total = StateBound::Constant(0, "one-time query");
    return out;
  }

  Walker walker{query, cardinalities, options, report, &out.operators};

  // Window buffer: the one piece of cross-firing state every windowed
  // factory owns, before any operator runs.
  if (query.window.kind != sql::WindowSpec::Kind::kNone &&
      !query.inputs.empty()) {
    int64_t per_row =
        query.inputs[0].basket_schema.EstimatedRowBytes(options.string_bytes);
    OperatorStateBound op;
    op.op = query.window.kind == sql::WindowSpec::Kind::kCount
                ? "Window(count)"
                : "Window(time)";
    op.loc = FindPlanLoc(*query.plan);
    op.bound = walker.WindowScaledBound(per_row, "window buffer");
    report->Add(DiagCode::kWindowStateBound, Severity::kNote,
                "window buffer bound: " + op.bound.ToString(), op.loc);
    out.operators.push_back(std::move(op));
  }

  walker.Visit(*query.plan);

  StateBound total;
  total.detail.clear();
  for (const OperatorStateBound& op : out.operators) {
    total = StateBound::Sum(total, op.bound);
  }
  if (out.operators.empty()) {
    total = StateBound::Constant(0, "stateless pipeline");
  }
  if (out.shard_copies > 1) {
    report->Add(DiagCode::kShardStateMultiplied, Severity::kNote,
                "state bound multiplied by " +
                    std::to_string(out.shard_copies) + " shard placements",
                FindPlanLoc(*query.plan));
  }
  out.total = total.Scaled(out.shard_copies);

  // Net projection: input-basket retention. Capacity-bounded baskets give a
  // numeric figure; unbounded ones are drained on fire but can back up
  // without a shedding cap — and multi-reader shared baskets additionally
  // hold every tuple until the slowest reader passes it (S006).
  StateBound retention = StateBound::Constant(0, "");
  for (const sql::ContinuousInput& in : query.inputs) {
    std::string basket = ToLower(in.basket);
    int64_t per_row =
        in.basket_schema.EstimatedRowBytes(options.string_bytes);
    auto cap = options.basket_capacity.find(basket);
    size_t capacity = cap == options.basket_capacity.end() ? 0 : cap->second;
    auto rd = options.basket_readers.find(basket);
    size_t readers = rd == options.basket_readers.end() ? 1 : rd->second;
    if (capacity > 0) {
      std::optional<int64_t> bytes =
          CheckedMul(static_cast<int64_t>(capacity), per_row);
      std::string detail = "basket '" + basket + "' capped at " +
                           std::to_string(capacity) + " rows";
      retention = StateBound::Sum(
          retention, bytes.has_value()
                         ? StateBound::Window(*bytes, false, detail)
                         : StateBound::Window(0, true, detail));
    } else {
      retention = StateBound::Sum(
          retention,
          StateBound::Window(0, true,
                             "basket '" + basket +
                                 "' has no shedding capacity (drained on "
                                 "fire; backlog unbounded)"));
      if (readers > 1) {
        report->Add(DiagCode::kBasketRetention, Severity::kNote,
                    "shared basket '" + basket + "' retains tuples for " +
                        std::to_string(readers) +
                        " readers with no shedding capacity — the slowest "
                        "reader bounds retention",
                    FindPlanLoc(*query.plan));
      }
    }
  }
  out.retention = retention.Scaled(out.shard_copies);

  report->Add(DiagCode::kStateBoundNote, Severity::kNote,
              "state bound: " + out.total.ToString(),
              FindPlanLoc(*query.plan));
  return out;
}

std::string StateReport::Describe() const {
  std::string out = "state: " + total.ToString() + "\n";
  for (const OperatorStateBound& op : operators) {
    out += "  " + op.op + ": " + op.bound.ToString() + "\n";
  }
  out += "  retention: " + retention.ToString() + "\n";
  if (shard_copies > 1) {
    out += "  shard placements: x" + std::to_string(shard_copies) + "\n";
  }
  return out;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

void AppendBoundJson(std::string& out, const StateBound& b) {
  out += "{\"bound\":\"";
  out += StateBoundKindName(b.kind);
  out += "\",\"bytes\":" + std::to_string(b.bytes);
  out += ",\"symbolic\":";
  out += b.symbolic ? "true" : "false";
  out += ",\"detail\":";
  AppendEscaped(out, b.detail);
  out += "}";
}

}  // namespace

std::string StateReport::ToJson() const {
  std::string out = "{\"verdict\":\"";
  out += StateBoundKindName(total.kind);
  out += "\",\"bytes\":" + std::to_string(total.bytes);
  out += ",\"symbolic\":";
  out += total.symbolic ? "true" : "false";
  out += ",\"shards\":" + std::to_string(shard_copies);
  out += ",\"operators\":[";
  for (size_t i = 0; i < operators.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"op\":";
    AppendEscaped(out, operators[i].op);
    out += ",\"state\":";
    AppendBoundJson(out, operators[i].bound);
    out += "}";
  }
  out += "],\"retention\":";
  AppendBoundJson(out, retention);
  out += "}";
  return out;
}

}  // namespace analysis
}  // namespace datacell
