#include "analysis/state_bound.h"

#include <algorithm>

namespace datacell {
namespace analysis {

const char* StateBoundKindName(StateBoundKind k) {
  switch (k) {
    case StateBoundKind::kConstant:
      return "constant";
    case StateBoundKind::kWindowBounded:
      return "window-bounded";
    case StateBoundKind::kKeyBounded:
      return "key-bounded";
    case StateBoundKind::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

StateBound StateBound::Constant(int64_t bytes, std::string detail) {
  StateBound b;
  b.kind = StateBoundKind::kConstant;
  b.bytes = bytes;
  b.detail = std::move(detail);
  return b;
}

StateBound StateBound::Window(int64_t bytes, bool symbolic,
                              std::string detail) {
  StateBound b;
  b.kind = StateBoundKind::kWindowBounded;
  b.bytes = symbolic ? 0 : bytes;
  b.symbolic = symbolic;
  b.detail = std::move(detail);
  return b;
}

StateBound StateBound::Key(int64_t bytes, bool symbolic, std::string detail) {
  StateBound b;
  b.kind = StateBoundKind::kKeyBounded;
  b.bytes = symbolic ? 0 : bytes;
  b.symbolic = symbolic;
  b.detail = std::move(detail);
  return b;
}

StateBound StateBound::Unbounded(std::string detail) {
  StateBound b;
  b.kind = StateBoundKind::kUnbounded;
  b.symbolic = false;
  b.detail = std::move(detail);
  return b;
}

StateBound StateBound::Sum(const StateBound& a, const StateBound& b) {
  StateBound out;
  out.kind = std::max(a.kind, b.kind);
  if (out.kind == StateBoundKind::kUnbounded) {
    out.bytes = 0;
    out.symbolic = false;
  } else {
    out.symbolic = a.symbolic || b.symbolic;
    out.bytes = out.symbolic ? 0 : a.bytes + b.bytes;
  }
  if (a.detail.empty()) {
    out.detail = b.detail;
  } else if (b.detail.empty()) {
    out.detail = a.detail;
  } else {
    out.detail = a.detail + "; " + b.detail;
  }
  return out;
}

StateBound StateBound::Scaled(size_t copies) const {
  StateBound out = *this;
  if (copies > 1 && out.numeric()) {
    out.bytes *= static_cast<int64_t>(copies);
  }
  return out;
}

std::string StateBound::ToString() const {
  std::string out = StateBoundKindName(kind);
  if (numeric()) {
    out += " (" + std::to_string(bytes) + " B)";
  } else if (symbolic) {
    out += " (symbolic)";
  }
  if (!detail.empty()) out += ": " + detail;
  return out;
}

}  // namespace analysis
}  // namespace datacell
