#include "analysis/partition_analyzer.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <set>

#include "common/hash.h"

namespace datacell {
namespace analysis {

namespace {

using sql::CompiledQuery;
using sql::WindowSpec;

// ---------------------------------------------------------------------------
// Lattice propagation over the select-project-join part of the plan.
// ---------------------------------------------------------------------------

/// bind_name -> ContinuousInput ordinal, for telling stream scans apart from
/// static-table scans.
using BindMap = std::map<std::string, size_t>;

KeyFlow FlowLower(const PlanNode& node, const BindMap& binds) {
  switch (node.kind()) {
    case PlanKind::kScan: {
      auto it = binds.find(node.scan_relation());
      size_t width = node.output_schema().num_fields();
      if (it != binds.end()) return KeyFlow::StreamScan(it->second, width);
      return KeyFlow::StaticScan(node.scan_relation(), width);
    }
    case PlanKind::kFilter:
      // Per-row: preserves both constraints and provenance.
      return FlowLower(*node.child(), binds);
    case PlanKind::kProject: {
      KeyFlow f = FlowLower(*node.child(), binds);
      if (f.pinned()) return f;
      std::vector<std::optional<ColOrigin>> out(node.projections().size());
      for (size_t i = 0; i < node.projections().size(); ++i) {
        const ExprPtr& e = node.projections()[i];
        if (e->kind() == ExprKind::kColumnRef &&
            e->column_index() < f.origins.size()) {
          out[i] = f.origins[e->column_index()];
        }
      }
      f.origins = std::move(out);
      return f;
    }
    case PlanKind::kHashJoin: {
      KeyFlow l = FlowLower(*node.child(0), binds);
      KeyFlow r = FlowLower(*node.child(1), binds);
      size_t lw = node.child(0)->output_schema().num_fields();
      size_t rw = node.child(1)->output_schema().num_fields();
      if (l.pinned()) return l;
      if (r.pinned()) return r;
      if (!r.has_stream) {
        // Static build side: replicate it to every shard; the probe side
        // drives co-location. The right key column carries the left key's
        // value, so it inherits that provenance.
        KeyFlow out = std::move(l);
        for (const std::string& s : r.static_relations) {
          out.static_relations.push_back(s);
        }
        out.origins.resize(lw);
        out.origins.resize(lw + rw);
        if (node.left_key() < lw) {
          out.origins[lw + node.right_key()] = out.origins[node.left_key()];
        }
        return out;
      }
      if (!l.has_stream) {
        // Mirror image: broadcast the static probe side.
        KeyFlow out = std::move(r);
        for (const std::string& s : l.static_relations) {
          out.static_relations.push_back(s);
        }
        std::vector<std::optional<ColOrigin>> origins(lw + rw);
        for (size_t i = 0; i < out.origins.size() && i < rw; ++i) {
          origins[lw + i] = out.origins[i];
        }
        if (node.right_key() < rw) {
          origins[node.left_key()] = origins[lw + node.right_key()];
        }
        out.origins = std::move(origins);
        return out;
      }
      // Stream-to-stream join. Try co-partitioning on the equi-key pair;
      // fall back to broadcasting the build (right) side.
      std::optional<ColOrigin> lo = node.left_key() < l.origins.size()
                                        ? l.origins[node.left_key()]
                                        : std::nullopt;
      std::optional<ColOrigin> ro = node.right_key() < r.origins.size()
                                        ? r.origins[node.right_key()]
                                        : std::nullopt;
      if (lo.has_value() && ro.has_value()) {
        KeyFlow out = l;
        if (out.CombineConstraints(r) &&
            out.RequireKey(lo->input, lo->column) &&
            out.RequireKey(ro->input, ro->column)) {
          out.origins = l.origins;
          out.origins.resize(lw);
          out.origins.insert(out.origins.end(), r.origins.begin(),
                             r.origins.end());
          out.origins.resize(lw + rw);
          return out;
        }
      }
      // Broadcast fallback: every shard sees every build-side row; any left
      // split then produces each match pair exactly once. Only sound when
      // the build subtree itself has no co-location constraints.
      if (r.req != KeyFlow::Req::kAny || !r.broadcast_inputs.empty()) {
        return KeyFlow::Pinned(
            "join build side cannot be broadcast: it has its own "
            "co-location constraints");
      }
      KeyFlow out = std::move(l);
      out.has_stream = true;
      for (const std::string& s : r.static_relations) {
        out.static_relations.push_back(s);
      }
      for (size_t s : r.stream_inputs) {
        out.broadcast_inputs.insert(s);
        out.stream_inputs.insert(s);
      }
      out.origins.resize(lw);
      out.origins.resize(lw + rw);
      if (node.left_key() < lw) {
        out.origins[lw + node.right_key()] = out.origins[node.left_key()];
      }
      return out;
    }
    case PlanKind::kUnion: {
      KeyFlow l = FlowLower(*node.child(0), binds);
      KeyFlow r = FlowLower(*node.child(1), binds);
      if (l.pinned()) return l;
      if (r.pinned()) return r;
      KeyFlow out = l;
      if (!out.CombineConstraints(r)) return out;
      // A column witnesses co-location only when both branches agree on its
      // provenance.
      for (size_t i = 0; i < out.origins.size(); ++i) {
        if (i >= r.origins.size() || !r.origins[i].has_value() ||
            !out.origins[i].has_value() || !(*out.origins[i] == *r.origins[i])) {
          out.origins[i] = std::nullopt;
        }
      }
      return out;
    }
    default:
      // Aggregate / Sort / Distinct / Limit below a join or a second
      // aggregate: the planner never builds this; pin conservatively.
      return KeyFlow::Pinned("operator '" + node.Describe() +
                             "' in a position the fan-out does not support");
  }
}

// ---------------------------------------------------------------------------
// Merge-plan synthesis.
// ---------------------------------------------------------------------------

/// Decomposed aggregate: the per-shard partial specs plus, per original
/// aggregate, where its partial column(s) land.
struct PartialLayout {
  std::vector<AggSpec> partial_specs;
  // Per original aggregate: index of its main partial column (relative to
  // the partial-spec list) and, for avg, the index of its count partial.
  std::vector<std::pair<size_t, std::optional<size_t>>> slots;
};

PartialLayout DecomposeAggregates(const std::vector<AggSpec>& specs) {
  PartialLayout out;
  for (size_t j = 0; j < specs.size(); ++j) {
    const AggSpec& s = specs[j];
    if (s.func == AggFunc::kAvg) {
      AggSpec sum = s;
      sum.func = AggFunc::kSum;
      sum.output_name = "__p" + std::to_string(j) + "_sum";
      AggSpec cnt = s;
      cnt.func = AggFunc::kCount;
      cnt.output_name = "__p" + std::to_string(j) + "_cnt";
      out.slots.emplace_back(out.partial_specs.size(),
                             out.partial_specs.size() + 1);
      out.partial_specs.push_back(std::move(sum));
      out.partial_specs.push_back(std::move(cnt));
    } else {
      AggSpec p = s;
      p.output_name = "__p" + std::to_string(j);
      out.slots.emplace_back(out.partial_specs.size(), std::nullopt);
      out.partial_specs.push_back(std::move(p));
    }
  }
  return out;
}

/// Builds the merge-side re-aggregation over Scan(kPartialsBinding) and the
/// projection that reconstructs the original aggregate's exact output
/// schema (so the post-aggregate operators rebuild unchanged on top).
Result<PlanPtr> BuildReaggregate(const PlanNode& agg, const Schema& partials,
                                 const PartialLayout& layout) {
  size_t groups = agg.group_columns().size();
  DC_ASSIGN_OR_RETURN(PlanPtr scan, MakeScan(kPartialsBinding, partials));
  std::vector<size_t> group_cols(groups);
  for (size_t g = 0; g < groups; ++g) group_cols[g] = g;

  // Merge every partial column: counts and sums re-sum, min/max re-min/max.
  std::vector<AggSpec> merge_specs;
  for (size_t p = 0; p < layout.partial_specs.size(); ++p) {
    AggSpec m;
    switch (layout.partial_specs[p].func) {
      case AggFunc::kCount:
      case AggFunc::kSum:
        m.func = AggFunc::kSum;
        break;
      case AggFunc::kMin:
        m.func = AggFunc::kMin;
        break;
      case AggFunc::kMax:
        m.func = AggFunc::kMax;
        break;
      case AggFunc::kAvg:
        return Status::Internal("avg survived aggregate decomposition");
    }
    m.input_column = groups + p;
    m.output_name = "__m" + std::to_string(p);
    merge_specs.push_back(std::move(m));
  }
  DC_ASSIGN_OR_RETURN(PlanPtr merged,
                      MakeAggregate(scan, group_cols, merge_specs));

  // Reconstruct the original aggregate's output schema: group columns pass
  // through; count casts back to int64; avg becomes sum/count.
  const Schema& target = agg.output_schema();
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (size_t g = 0; g < groups; ++g) {
    const Field& f = target.field(g);
    exprs.push_back(Expr::Column(g, f.name, f.type));
    names.push_back(f.name);
  }
  const std::vector<AggSpec>& specs = agg.aggregates();
  for (size_t j = 0; j < specs.size(); ++j) {
    const Field& f = target.field(groups + j);
    size_t main_col = groups + layout.slots[j].first;
    ExprPtr main = Expr::Column(main_col, "", DataType::kDouble);
    switch (specs[j].func) {
      case AggFunc::kCount:
        exprs.push_back(Expr::Function(ScalarFunc::kToInt64, std::move(main)));
        break;
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax:
        exprs.push_back(std::move(main));
        break;
      case AggFunc::kAvg: {
        size_t cnt_col = groups + *layout.slots[j].second;
        exprs.push_back(Expr::Binary(
            BinaryOp::kDiv, std::move(main),
            Expr::Column(cnt_col, "", DataType::kDouble)));
        break;
      }
    }
    names.push_back(f.name);
  }
  return MakeProject(merged, std::move(exprs), std::move(names));
}

/// Re-applies one post-boundary operator on the merge side.
Result<PlanPtr> RebuildAbove(PlanPtr base, const PlanNode& node) {
  switch (node.kind()) {
    case PlanKind::kFilter:
      return MakeFilter(std::move(base), node.predicate());
    case PlanKind::kProject: {
      std::vector<std::string> names;
      for (size_t i = 0; i < node.output_schema().num_fields(); ++i) {
        names.push_back(node.output_schema().field(i).name);
      }
      return MakeProject(std::move(base), node.projections(),
                         std::move(names));
    }
    case PlanKind::kDistinct:
      return MakeDistinct(std::move(base));
    case PlanKind::kSort:
      return MakeSort(std::move(base), node.sort_keys());
    case PlanKind::kLimit:
      return MakeLimit(std::move(base), node.offset(), node.limit());
    default:
      return Status::Internal("unexpected node above the merge boundary: " +
                              node.Describe());
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* PartitionVerdictName(PartitionVerdict v) {
  switch (v) {
    case PartitionVerdict::kPartitionable:
      return "partitionable";
    case PartitionVerdict::kNeedsFinalMerge:
      return "needs-final-merge";
    case PartitionVerdict::kNeedsBroadcast:
      return "needs-broadcast";
    case PartitionVerdict::kPinned:
      return "pinned";
  }
  return "?";
}

const char* MergeKindName(MergeKind m) {
  switch (m) {
    case MergeKind::kNone:
      return "none";
    case MergeKind::kReaggregate:
      return "reaggregate";
    case MergeKind::kOrderedMerge:
      return "ordered-merge";
  }
  return "?";
}

std::string PartitionReport::Describe() const {
  std::string out = "partition: ";
  out += PartitionVerdictName(verdict);
  if (verdict == PartitionVerdict::kPartitionable && !output_key_name.empty()) {
    out += "(key=" + output_key_name + ")";
  }
  out += "\n";
  if (!pinned_reason.empty()) {
    out += "  reason: " + pinned_reason + "\n";
  }
  for (const ShardKey& k : inputs) {
    out += "  input '" + k.basket + "': ";
    switch (k.kind) {
      case ShardKeyKind::kHash:
        out += "hash(" + k.key_name + ")";
        out += k.declared ? " [declared]" : " [prescribed]";
        break;
      case ShardKeyKind::kAnySplit:
        out += "any-split";
        break;
      case ShardKeyKind::kBroadcast:
        out += "broadcast";
        break;
    }
    out += "\n";
  }
  for (const std::string& r : broadcast_relations) {
    out += "  broadcast table: " + r + "\n";
  }
  if (merge != MergeKind::kNone) {
    out += "  merge: ";
    out += MergeKindName(merge);
    if (merge_per_window) out += " (per window round)";
    out += "\n";
  }
  if (output_key_column.has_value()) {
    out += "  output key: " + output_key_name + " (column " +
           std::to_string(*output_key_column) + ")\n";
  }
  return out;
}

std::string PartitionReport::ToJson() const {
  std::string out = "{\"verdict\":\"";
  out += PartitionVerdictName(verdict);
  out += "\"";
  if (!pinned_reason.empty()) {
    out += ",\"pinned_reason\":\"" + JsonEscape(pinned_reason) + "\"";
  }
  out += ",\"inputs\":[";
  for (size_t i = 0; i < inputs.size(); ++i) {
    const ShardKey& k = inputs[i];
    if (i > 0) out += ",";
    out += "{\"basket\":\"" + JsonEscape(k.basket) + "\",\"bind\":\"" +
           JsonEscape(k.bind_name) + "\",\"split\":\"";
    switch (k.kind) {
      case ShardKeyKind::kHash:
        out += "hash\",\"key\":\"" + JsonEscape(k.key_name) +
               "\",\"key_column\":" + std::to_string(k.key_column) +
               ",\"declared\":" + (k.declared ? "true" : "false");
        break;
      case ShardKeyKind::kAnySplit:
        out += "any\"";
        break;
      case ShardKeyKind::kBroadcast:
        out += "broadcast\"";
        break;
    }
    out += "}";
  }
  out += "],\"broadcast\":[";
  for (size_t i = 0; i < broadcast_relations.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + JsonEscape(broadcast_relations[i]) + "\"";
  }
  out += "],\"merge\":\"";
  out += MergeKindName(merge);
  out += "\",\"merge_per_window\":";
  out += merge_per_window ? "true" : "false";
  if (output_key_column.has_value()) {
    out += ",\"output_key\":\"" + JsonEscape(output_key_name) +
           "\",\"output_key_column\":" + std::to_string(*output_key_column);
  }
  out += "}";
  return out;
}

Result<PartitionReport> AnalyzePartitioning(const CompiledQuery& query,
                                            const PartitionKeyMap& declared,
                                            AnalysisReport* report) {
  AnalysisReport scratch;
  if (report == nullptr) report = &scratch;
  PartitionReport out;
  out.partial_plan = query.plan;
  if (!query.continuous) {
    out.verdict = PartitionVerdict::kPinned;
    out.pinned_reason = "one-time query; executes on the submitting shard";
    return out;
  }

  // Input bookkeeping shared by every exit path.
  BindMap binds;
  for (size_t i = 0; i < query.inputs.size(); ++i) {
    binds[query.inputs[i].bind_name] = i;
    ShardKey k;
    k.basket = query.inputs[i].basket;
    k.bind_name = query.inputs[i].bind_name;
    out.inputs.push_back(std::move(k));
  }
  auto declared_key = [&](size_t input) -> std::optional<size_t> {
    auto it = declared.find(query.inputs[input].basket);
    if (it == declared.end()) return std::nullopt;
    return it->second;
  };
  auto pin = [&](std::string reason) {
    out.verdict = PartitionVerdict::kPinned;
    out.pinned_reason = std::move(reason);
    out.merge = MergeKind::kNone;
    out.merge_plan = nullptr;
    out.partial_plan = query.plan;
    report->Add(DiagCode::kPinnedQuery, Severity::kWarning,
                "query pins a single shard: " + out.pinned_reason, {},
                "query");
  };

  if (query.window.kind == WindowSpec::Kind::kCount) {
    pin("count-based window firing depends on global arrival order");
    return out;
  }

  // Peel the post-join spine: [Limit] [Sort] [Distinct] projections/filters
  // down to the (at most one) Aggregate; everything below is the
  // select-project-join zone the lattice walks.
  std::vector<const PlanNode*> upper;  // root first
  const PlanNode* agg = nullptr;
  const PlanNode* cur = query.plan.get();
  while (agg == nullptr) {
    switch (cur->kind()) {
      case PlanKind::kFilter:
      case PlanKind::kProject:
      case PlanKind::kDistinct:
      case PlanKind::kSort:
      case PlanKind::kLimit:
        upper.push_back(cur);
        cur = cur->child().get();
        continue;
      case PlanKind::kAggregate:
        agg = cur;
        cur = cur->child().get();
        break;
      default:
        break;
    }
    break;
  }

  KeyFlow flow = FlowLower(*cur, binds);
  if (flow.pinned()) {
    pin(flow.pinned_reason);
    return out;
  }

  bool merging = false;
  const PlanNode* sort_node = nullptr;
  // Inputs whose re-shuffle was already reported at the aggregate site (with
  // a source location); the per-input summary loop must not repeat it.
  std::set<size_t> reshuffle_noted;

  // --- aggregate ---------------------------------------------------------
  if (agg != nullptr) {
    // A group column whose provenance is compatible with the existing
    // constraints keeps every group on one shard: no merge needed. Prefer a
    // column that matches the receptor's declared partition key.
    const std::vector<size_t>& gcols = agg->group_columns();
    std::optional<size_t> chosen;  // index into gcols
    std::optional<size_t> fallback;
    for (size_t g = 0; g < gcols.size(); ++g) {
      if (gcols[g] >= flow.origins.size()) continue;
      const auto& o = flow.origins[gcols[g]];
      if (!o.has_value()) continue;
      KeyFlow probe = flow;
      if (!probe.RequireKey(o->input, o->column)) continue;
      if (!fallback.has_value()) fallback = g;
      auto dk = declared_key(o->input);
      if (dk.has_value() && *dk == o->column) {
        chosen = g;
        break;
      }
    }
    if (!chosen.has_value()) chosen = fallback;
    if (chosen.has_value()) {
      const ColOrigin o = *flow.origins[gcols[*chosen]];
      flow.RequireKey(o.input, o.column);
      auto dk = declared_key(o.input);
      if (dk.has_value() && *dk != o.column) {
        reshuffle_noted.insert(o.input);
        report->Add(DiagCode::kReshuffleRequired, Severity::kNote,
                    "group-by key '" +
                        agg->output_schema().field(*chosen).name +
                        "' differs from the declared partition key of '" +
                        query.inputs[o.input].basket +
                        "'; ingest must re-shuffle",
                    agg->child()->projections().size() > gcols[*chosen]
                        ? agg->child()->projections()[gcols[*chosen]]->loc()
                        : SourceLoc{},
                    "Aggregate");
      }
      // Group columns keep their provenance through the aggregate.
      std::vector<std::optional<ColOrigin>> origins(
          agg->output_schema().num_fields());
      for (size_t g = 0; g < gcols.size(); ++g) {
        if (gcols[g] < flow.origins.size()) origins[g] = flow.origins[gcols[g]];
      }
      flow.origins = std::move(origins);
    } else {
      // Groups scatter across shards; the merge plan re-aggregates. Sound
      // for every aggregate the engine has: count/sum/min/max merge
      // directly, avg decomposes into sum + count.
      merging = true;
      out.merge = MergeKind::kReaggregate;
      if (gcols.empty()) {
        report->Add(DiagCode::kScalarAggMerge, Severity::kNote,
                    "scalar aggregate requires a re-aggregation merge "
                    "across shards",
                    {}, "Aggregate");
      } else {
        report->Add(DiagCode::kReshuffleRequired, Severity::kNote,
                    "no group-by column carries a stream partition key; "
                    "per-shard partials are re-aggregated at merge",
                    {}, "Aggregate");
      }
      flow.origins.assign(agg->output_schema().num_fields(), std::nullopt);
    }
  }

  // --- post-aggregate spine, bottom-up ------------------------------------
  for (auto it = upper.rbegin(); it != upper.rend(); ++it) {
    const PlanNode* n = *it;
    switch (n->kind()) {
      case PlanKind::kFilter:
        break;  // per-row, per-group: transparent either way
      case PlanKind::kProject: {
        if (merging) break;  // lives on the merge side
        std::vector<std::optional<ColOrigin>> o(n->projections().size());
        for (size_t i = 0; i < n->projections().size(); ++i) {
          const ExprPtr& e = n->projections()[i];
          if (e->kind() == ExprKind::kColumnRef &&
              e->column_index() < flow.origins.size()) {
            o[i] = flow.origins[e->column_index()];
          }
        }
        flow.origins = std::move(o);
        break;
      }
      case PlanKind::kDistinct: {
        if (merging) break;  // rebuilt after the merge re-aggregation
        // Duplicates are identical rows, so they co-locate iff some input
        // column is a split key. Without one, per-shard DISTINCT under-
        // deduplicates: not decomposable, pin.
        std::optional<ColOrigin> witness;
        for (const auto& o : flow.origins) {
          if (!o.has_value()) continue;
          KeyFlow probe = flow;
          if (!probe.RequireKey(o->input, o->column)) continue;
          auto dk = declared_key(o->input);
          if (dk.has_value() && *dk == o->column) {
            witness = o;
            break;
          }
          if (!witness.has_value()) witness = o;
        }
        if (!witness.has_value()) {
          pin("DISTINCT over columns that carry no partition key is not "
              "decomposable");
          return out;
        }
        flow.RequireKey(witness->input, witness->column);
        break;
      }
      case PlanKind::kSort:
        sort_node = n;
        if (!merging) {
          merging = true;
          out.merge = MergeKind::kOrderedMerge;
          report->Add(DiagCode::kOrderedMergeRequired, Severity::kNote,
                      "ordered emit: per-shard outputs are re-sorted at "
                      "merge (k-way merge equivalent)",
                      {}, "Sort");
        }
        break;
      case PlanKind::kLimit:
        if (!merging) {
          pin("LIMIT without ORDER BY selects arbitrary rows; cannot fan "
              "out deterministically");
          return out;
        }
        break;
      default:
        pin("unexpected operator on the output spine: " + n->Describe());
        return out;
    }
  }

  // --- synthesize the per-shard and merge plans ---------------------------
  if (merging) {
    PlanPtr merge;
    size_t boundary;  // index into `upper` of the first node ON the merge side
    if (out.merge == MergeKind::kReaggregate) {
      PartialLayout layout = DecomposeAggregates(agg->aggregates());
      DC_ASSIGN_OR_RETURN(
          PlanPtr partial,
          MakeAggregate(agg->child(), agg->group_columns(),
                        layout.partial_specs));
      out.partial_plan = partial;
      DC_ASSIGN_OR_RETURN(
          merge, BuildReaggregate(*agg, partial->output_schema(), layout));
      boundary = upper.size();  // everything above the aggregate
    } else {
      // Ordered merge: the partial is everything below the sort; the merge
      // re-sorts the concatenated partials and re-applies what sat above.
      out.partial_plan = sort_node->child();
      DC_ASSIGN_OR_RETURN(
          merge, MakeScan(kPartialsBinding, out.partial_plan->output_schema()));
      size_t sort_pos = 0;
      while (upper[sort_pos] != sort_node) ++sort_pos;
      boundary = sort_pos + 1;  // sort itself rebuilds first, below
      DC_ASSIGN_OR_RETURN(merge, MakeSort(merge, sort_node->sort_keys()));
    }
    // Rebuild the spine nodes on the merge side, nearest-boundary first.
    for (size_t i = boundary; i-- > 0;) {
      if (out.merge == MergeKind::kOrderedMerge && upper[i] == sort_node) {
        continue;  // already rebuilt as the merge's sort
      }
      DC_ASSIGN_OR_RETURN(merge, RebuildAbove(std::move(merge), *upper[i]));
    }
    out.merge_plan = merge;
    out.verdict = PartitionVerdict::kNeedsFinalMerge;
  } else {
    out.partial_plan = query.plan;
    out.verdict = (!flow.static_relations.empty() ||
                   !flow.broadcast_inputs.empty())
                      ? PartitionVerdict::kNeedsBroadcast
                      : PartitionVerdict::kPartitionable;
  }
  out.merge_per_window =
      out.merge != MergeKind::kNone && query.window.kind == WindowSpec::Kind::kTime;
  if (out.merge_per_window) {
    report->Add(DiagCode::kWindowMergeRequired, Severity::kNote,
                "time-window query: the merge step runs once per aligned "
                "window round",
                {}, "query");
  }

  // --- per-input shard keys + advisory diagnostics ------------------------
  out.broadcast_relations = flow.static_relations;
  std::sort(out.broadcast_relations.begin(), out.broadcast_relations.end());
  out.broadcast_relations.erase(std::unique(out.broadcast_relations.begin(),
                                            out.broadcast_relations.end()),
                                out.broadcast_relations.end());
  for (const std::string& r : out.broadcast_relations) {
    report->Add(DiagCode::kBroadcastJoinInput, Severity::kNote,
                "table '" + r + "' is replicated to every shard", {},
                "HashJoin");
  }
  for (size_t i = 0; i < out.inputs.size(); ++i) {
    ShardKey& k = out.inputs[i];
    const Schema& bschema = query.inputs[i].basket_schema;
    if (flow.broadcast_inputs.count(i) > 0) {
      k.kind = ShardKeyKind::kBroadcast;
      report->Add(DiagCode::kBroadcastJoinInput, Severity::kNote,
                  "stream '" + k.basket +
                      "' feeds a join side that is not co-partitioned; its "
                      "rows are broadcast to every shard",
                  {}, "HashJoin");
      continue;
    }
    auto req = flow.required.find(i);
    auto dk = declared_key(i);
    if (req != flow.required.end()) {
      k.kind = ShardKeyKind::kHash;
      k.key_column = req->second;
      k.key_name = bschema.field(req->second).name;
      k.declared = dk.has_value() && *dk == req->second;
      if (!dk.has_value()) {
        report->Add(DiagCode::kPrescribedPartitionKey, Severity::kNote,
                    "stream '" + k.basket +
                        "' has no declared partition key; the fan-out "
                        "requires 'partition by " +
                        k.key_name + "'",
                    {}, "query");
      } else if (*dk != req->second && reshuffle_noted.count(i) == 0) {
        report->Add(DiagCode::kReshuffleRequired, Severity::kNote,
                    "stream '" + k.basket + "' is ingested on key '" +
                        bschema.field(*dk).name +
                        "' but this query co-locates on '" + k.key_name +
                        "'; ingest must re-shuffle",
                    {}, "query");
      }
    } else if (dk.has_value()) {
      // No constraint from this query; ride the declared ingest key.
      k.kind = ShardKeyKind::kHash;
      k.key_column = *dk;
      k.key_name = bschema.field(*dk).name;
      k.declared = true;
    } else {
      k.kind = ShardKeyKind::kAnySplit;
    }
  }

  // Which output column still carries a shard key, for downstream queries
  // over the emitted stream.
  if (out.verdict == PartitionVerdict::kPartitionable ||
      out.verdict == PartitionVerdict::kNeedsBroadcast) {
    for (size_t c = 0; c < flow.origins.size(); ++c) {
      const auto& o = flow.origins[c];
      if (!o.has_value()) continue;
      const ShardKey& k = out.inputs[o->input];
      if (k.kind == ShardKeyKind::kHash && k.key_column == o->column) {
        out.output_key_column = c;
        out.output_key_name = query.output_schema.field(c).name;
        break;
      }
    }
    bool keyed = std::any_of(out.inputs.begin(), out.inputs.end(),
                             [](const ShardKey& k) {
                               return k.kind == ShardKeyKind::kHash;
                             });
    if (keyed && !out.output_key_column.has_value()) {
      report->Add(DiagCode::kPartitionKeyDropped, Severity::kNote,
                  "the output carries no partition-key column; queries "
                  "over the emitted stream cannot inherit the key",
                  {}, "query");
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Split-merge equivalence oracle.
// ---------------------------------------------------------------------------

namespace {

// The row-hash lives in common/hash.h (HashValue and the typed helpers):
// the shard router uses the same function on raw BAT columns, so a verdict
// this oracle certifies describes exactly the runtime split.

Result<TablePtr> ApplyConsume(const sql::ContinuousInput& in,
                              const TablePtr& table) {
  if (in.consume_predicate == nullptr) return table;
  DC_ASSIGN_OR_RETURN(std::vector<size_t> pos,
                      EvaluatePredicate(*in.consume_predicate, *table));
  return TablePtr(table->Take(pos));
}

/// Total order over values for canonicalizing row multisets.
int CompareValues(const Value& a, const Value& b) {
  auto rank = [](const Value& v) -> int {
    if (v.is_null()) return 0;
    if (v.is_bool()) return 1;
    if (v.is_int64() || v.is_timestamp() || v.is_double()) return 2;
    return 3;
  };
  int ra = rank(a), rb = rank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1:
      return (a.bool_value() ? 1 : 0) - (b.bool_value() ? 1 : 0);
    case 2: {
      double x = a.AsDouble(), y = b.AsDouble();
      if (x < y) return -1;
      if (x > y) return 1;
      return 0;
    }
    default:
      return a.string_value().compare(b.string_value());
  }
}

bool ValuesClose(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_double() || b.is_double()) {
    if (!(a.is_double() || a.is_int64() || a.is_timestamp())) return false;
    if (!(b.is_double() || b.is_int64() || b.is_timestamp())) return false;
    double x = a.AsDouble(), y = b.AsDouble();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) == std::isnan(y);
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= 1e-6 * scale;
  }
  return CompareValues(a, b) == 0;
}

/// Projects `rows` onto `cols` (all columns when empty), sorts
/// canonically, and compares pairwise with double tolerance.
bool RowMultisetsMatch(std::vector<Row> a, std::vector<Row> b,
                       const std::vector<size_t>& cols, std::string* detail) {
  auto project = [&](std::vector<Row>& rows) {
    if (cols.empty()) return;
    for (Row& r : rows) {
      Row p;
      for (size_t c : cols) p.push_back(r[c]);
      r = std::move(p);
    }
  };
  project(a);
  project(b);
  auto less = [](const Row& x, const Row& y) {
    for (size_t i = 0; i < x.size() && i < y.size(); ++i) {
      int c = CompareValues(x[i], y[i]);
      if (c != 0) return c < 0;
    }
    return x.size() < y.size();
  };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  if (a.size() != b.size()) {
    *detail = "row count mismatch: reference " + std::to_string(a.size()) +
              " vs merged " + std::to_string(b.size());
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t c = 0; c < a[i].size(); ++c) {
      if (!ValuesClose(a[i][c], b[i][c])) {
        *detail = "row " + std::to_string(i) + " column " + std::to_string(c) +
                  ": reference " + a[i][c].ToString() + " vs merged " +
                  b[i][c].ToString();
        return false;
      }
    }
  }
  return true;
}

}  // namespace

Result<SplitMergeResult> CheckSplitMergeEquivalence(
    const CompiledQuery& query, const PartitionReport& report,
    const std::vector<TablePtr>& input_tables, const PlanBindings& statics,
    size_t num_shards) {
  if (!query.continuous || input_tables.size() != query.inputs.size()) {
    return Status::InvalidArgument(
        "oracle needs a continuous query and one table per stream input");
  }
  if (report.inputs.size() != query.inputs.size()) {
    return Status::InvalidArgument("report does not match the query");
  }

  // Consume-predicate-filtered slices, as the factory would drain them.
  std::vector<TablePtr> slices;
  for (size_t i = 0; i < query.inputs.size(); ++i) {
    DC_ASSIGN_OR_RETURN(TablePtr s,
                        ApplyConsume(query.inputs[i], input_tables[i]));
    slices.push_back(std::move(s));
  }

  // Reference: single-node execution over the full slices.
  PlanBindings ref = statics;
  for (size_t i = 0; i < slices.size(); ++i) {
    ref[query.inputs[i].bind_name] = slices[i];
  }
  DC_ASSIGN_OR_RETURN(TablePtr reference, ExecutePlan(*query.plan, ref));

  // Sharded: split per the report, run the partial plan per shard.
  const PlanNode& partial =
      report.partial_plan != nullptr ? *report.partial_plan : *query.plan;
  std::vector<TablePtr> shard_outputs;
  for (size_t s = 0; s < num_shards; ++s) {
    PlanBindings bind = statics;
    for (size_t i = 0; i < slices.size(); ++i) {
      const ShardKey& k = report.inputs[i];
      std::vector<size_t> pos;
      for (size_t r = 0; r < slices[i]->num_rows(); ++r) {
        size_t dest = 0;
        switch (k.kind) {
          case ShardKeyKind::kBroadcast:
            dest = s;  // every shard takes every row
            break;
          case ShardKeyKind::kAnySplit:
            dest = r % num_shards;
            break;
          case ShardKeyKind::kHash:
            dest = static_cast<size_t>(
                HashValue(slices[i]->GetRow(r)[k.key_column]) % num_shards);
            break;
        }
        if (dest == s) pos.push_back(r);
      }
      bind[query.inputs[i].bind_name] = TablePtr(slices[i]->Take(pos));
    }
    DC_ASSIGN_OR_RETURN(TablePtr part, ExecutePlan(partial, bind));
    shard_outputs.push_back(std::move(part));
  }

  // Merge: concatenate, then run the merge plan when one is prescribed.
  auto merged = std::make_shared<Table>("merged", partial.output_schema());
  for (const TablePtr& p : shard_outputs) {
    DC_RETURN_NOT_OK(merged->AppendTable(*p));
  }
  TablePtr result = merged;
  if (report.merge_plan != nullptr) {
    PlanBindings bind;
    bind[kPartialsBinding] = merged;
    DC_ASSIGN_OR_RETURN(result, ExecutePlan(*report.merge_plan, bind));
  }

  // LIMIT leaves the tie-break at the cut unspecified: compare row count
  // and sort-key columns only. Everything else compares full rows.
  std::vector<size_t> cols;
  if (query.plan->kind() == PlanKind::kLimit) {
    const PlanNode& below = *query.plan->child();
    if (below.kind() == PlanKind::kSort) {
      for (const SortKey& sk : below.sort_keys()) cols.push_back(sk.column);
    }
  }

  SplitMergeResult r;
  r.equivalent = RowMultisetsMatch(reference->ToRows(), result->ToRows(),
                                   cols, &r.detail);
  return r;
}

}  // namespace analysis
}  // namespace datacell
