#ifndef DATACELL_ANALYSIS_STATE_BOUND_H_
#define DATACELL_ANALYSIS_STATE_BOUND_H_

#include <cstdint>
#include <string>

#include "storage/schema.h"

namespace datacell {
namespace analysis {

/// The pass-4 state-bound lattice. Every stateful operator of a continuous
/// query is assigned one of four classes, ordered from tight to hopeless:
///
///   kConstant       O(1) bytes regardless of input history (scalar
///                   aggregate accumulators, LIMIT counters).
///   kWindowBounded  rows bounded by a window specification: count windows
///                   give a numeric rows x bytes/row product, time windows
///                   are bounded in time but rate-dependent (symbolic).
///   kKeyBounded     rows bounded by a key-space cardinality: group-by /
///                   distinct under a CREATE BASKET ... WITH
///                   (cardinality(col) = N) hint, or a join build side over
///                   a static table of known size.
///   kUnbounded      grows with the unbounded stream history (unwindowed
///                   stream-stream joins, unwindowed group-by/distinct on
///                   unhinted keys).
///
/// Folding two coexisting bounds joins the classes to the worse one and adds
/// the numeric components; multiplying by a shard placement scales bytes.
enum class StateBoundKind {
  kConstant,
  kWindowBounded,
  kKeyBounded,
  kUnbounded,
};

/// "constant", "window-bounded", "key-bounded" or "unbounded".
const char* StateBoundKindName(StateBoundKind k);

struct StateBound {
  StateBoundKind kind = StateBoundKind::kConstant;
  /// Worst-case bytes. Valid only when `numeric()`; 0 otherwise.
  int64_t bytes = 0;
  /// Bounded in principle but not numerically (time windows without a rate
  /// assumption, static join sides of unknown size). Never set together
  /// with kUnbounded — unbounded is already the bottom of the lattice.
  bool symbolic = false;
  /// Human-readable formula, e.g. "100 rows x 24 B/row".
  std::string detail;

  static StateBound Constant(int64_t bytes, std::string detail);
  static StateBound Window(int64_t bytes, bool symbolic, std::string detail);
  static StateBound Key(int64_t bytes, bool symbolic, std::string detail);
  static StateBound Unbounded(std::string detail);

  /// True when `bytes` is a usable worst-case figure.
  bool numeric() const {
    return kind != StateBoundKind::kUnbounded && !symbolic;
  }

  /// Lattice fold of two bounds that coexist in one query: kinds join to
  /// the worse class, bytes add, symbolic taints. Details concatenate with
  /// "; " (empty operands drop out).
  static StateBound Sum(const StateBound& a, const StateBound& b);

  /// The bound for `copies` shard-placed instances of this state: bytes
  /// scale, class and symbolic flag are unchanged.
  StateBound Scaled(size_t copies) const;

  /// "window-bounded (3200 B): 100 rows x 32 B/row", "unbounded: ...".
  std::string ToString() const;
};

}  // namespace analysis
}  // namespace datacell

#endif  // DATACELL_ANALYSIS_STATE_BOUND_H_
