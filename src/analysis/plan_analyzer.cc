#include "analysis/plan_analyzer.h"

namespace datacell {
namespace analysis {

namespace {

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

bool IsLogical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

/// Storage-class compatibility: values of these types flow through the same
/// BAT accessors at fire time, so mixing them cannot crash the evaluator.
bool SameStorageClass(DataType a, DataType b) {
  if (a == b) return true;
  return IsNumeric(a) && IsNumeric(b);
}

std::string TypeName(DataType t) { return DataTypeToString(t); }

}  // namespace

std::optional<DataType> CheckExpr(const Expr& expr, const Schema& input,
                                  const std::string& where,
                                  AnalysisReport* report) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      if (expr.column_index() >= input.num_fields()) {
        report->Add(DiagCode::kColumnOutOfRange, Severity::kError,
                    "column reference '" + expr.column_name() + "' (#" +
                        std::to_string(expr.column_index()) +
                        ") exceeds input arity " +
                        std::to_string(input.num_fields()),
                    expr.loc(), where);
        return std::nullopt;
      }
      DataType actual = input.field(expr.column_index()).type;
      if (actual != expr.type()) {
        // Numeric-family drift is harmless at fire time (shared accessors);
        // a string/bool class mismatch would hit the wrong BAT accessor.
        Severity sev = SameStorageClass(actual, expr.type())
                           ? Severity::kWarning
                           : Severity::kError;
        report->Add(DiagCode::kDeclaredTypeMismatch, sev,
                    "column '" + expr.column_name() + "' is declared " +
                        TypeName(expr.type()) + " but input column #" +
                        std::to_string(expr.column_index()) + " is " +
                        TypeName(actual),
                    expr.loc(), where);
        if (sev == Severity::kError) return std::nullopt;
      }
      return actual;
    }
    case ExprKind::kLiteral:
      return expr.type();
    case ExprKind::kBinary: {
      auto lt = CheckExpr(*expr.left(), input, where, report);
      auto rt = CheckExpr(*expr.right(), input, where, report);
      if (!lt.has_value() || !rt.has_value()) return std::nullopt;
      BinaryOp op = expr.binary_op();
      if (IsArithmetic(op)) {
        if (!IsNumeric(*lt) || !IsNumeric(*rt)) {
          report->Add(DiagCode::kArithmeticType, Severity::kError,
                      "arithmetic '" + std::string(BinaryOpToString(op)) +
                          "' requires numeric operands, got " + TypeName(*lt) +
                          " and " + TypeName(*rt) + " in " + expr.ToString(),
                      expr.loc(), where);
          return std::nullopt;
        }
        return (*lt == DataType::kDouble || *rt == DataType::kDouble)
                   ? DataType::kDouble
                   : DataType::kInt64;
      }
      if (IsLogical(op)) {
        if (*lt != DataType::kBool || *rt != DataType::kBool) {
          report->Add(DiagCode::kLogicalType, Severity::kError,
                      "AND/OR require boolean operands, got " + TypeName(*lt) +
                          " and " + TypeName(*rt) + " in " + expr.ToString(),
                      expr.loc(), where);
          return std::nullopt;
        }
        return DataType::kBool;
      }
      if (op == BinaryOp::kLike) {
        if (*lt != DataType::kString || *rt != DataType::kString) {
          report->Add(DiagCode::kLikeType, Severity::kError,
                      "LIKE requires string operands, got " + TypeName(*lt) +
                          " and " + TypeName(*rt) + " in " + expr.ToString(),
                      expr.loc(), where);
          return std::nullopt;
        }
        return DataType::kBool;
      }
      // Comparison: strings with strings, bools with bools, numerics mix.
      bool ok = (*lt == DataType::kString) == (*rt == DataType::kString) &&
                (*lt == DataType::kBool) == (*rt == DataType::kBool);
      if (!ok) {
        report->Add(DiagCode::kComparisonType, Severity::kError,
                    "cannot compare " + TypeName(*lt) + " with " +
                        TypeName(*rt) + " in " + expr.ToString(),
                    expr.loc(), where);
        return std::nullopt;
      }
      return DataType::kBool;
    }
    case ExprKind::kUnary: {
      auto t = CheckExpr(*expr.operand(), input, where, report);
      if (!t.has_value()) return std::nullopt;
      switch (expr.unary_op()) {
        case UnaryOp::kNot:
          if (*t != DataType::kBool) {
            report->Add(DiagCode::kNotType, Severity::kError,
                        "NOT requires a boolean operand, got " + TypeName(*t) +
                            " in " + expr.ToString(),
                        expr.loc(), where);
            return std::nullopt;
          }
          return DataType::kBool;
        case UnaryOp::kNeg:
          if (!IsNumeric(*t)) {
            report->Add(DiagCode::kNegType, Severity::kError,
                        "unary minus requires a numeric operand, got " +
                            TypeName(*t) + " in " + expr.ToString(),
                        expr.loc(), where);
            return std::nullopt;
          }
          return *t;
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull:
          return DataType::kBool;
      }
      return std::nullopt;
    }
    case ExprKind::kFunction: {
      auto t = CheckExpr(*expr.operand(), input, where, report);
      if (!t.has_value()) return std::nullopt;
      ScalarFunc f = expr.scalar_func();
      bool needs_string = f == ScalarFunc::kLength ||
                          f == ScalarFunc::kLower || f == ScalarFunc::kUpper;
      if (needs_string && *t != DataType::kString) {
        report->Add(DiagCode::kFunctionArgType, Severity::kError,
                    "function '" + std::string(ScalarFuncToString(f)) +
                        "' requires a string argument, got " + TypeName(*t),
                    expr.loc(), where);
        return std::nullopt;
      }
      if (!needs_string && !IsNumeric(*t)) {
        report->Add(DiagCode::kFunctionArgType, Severity::kError,
                    "function '" + std::string(ScalarFuncToString(f)) +
                        "' requires a numeric argument, got " + TypeName(*t),
                    expr.loc(), where);
        return std::nullopt;
      }
      switch (f) {
        case ScalarFunc::kAbs:
          return *t == DataType::kDouble ? DataType::kDouble
                                         : DataType::kInt64;
        case ScalarFunc::kFloor:
        case ScalarFunc::kCeil:
        case ScalarFunc::kRound:
        case ScalarFunc::kSqrt:
          return DataType::kDouble;
        case ScalarFunc::kLength:
        case ScalarFunc::kToInt64:
          return DataType::kInt64;
        case ScalarFunc::kLower:
        case ScalarFunc::kUpper:
          return DataType::kString;
      }
      return std::nullopt;
    }
    case ExprKind::kCase: {
      std::optional<DataType> out;
      bool broken = false;
      for (size_t i = 0; i < expr.num_when_branches(); ++i) {
        auto ct = CheckExpr(*expr.when_cond(i), input, where, report);
        if (ct.has_value() && *ct != DataType::kBool) {
          report->Add(DiagCode::kCaseConditionType, Severity::kError,
                      "CASE WHEN condition must be boolean, got " +
                          TypeName(*ct) + " in " + expr.when_cond(i)->ToString(),
                      expr.loc(), where);
          broken = true;
        }
        auto vt = CheckExpr(*expr.when_value(i), input, where, report);
        if (!vt.has_value()) {
          broken = true;
        } else if (!out.has_value()) {
          out = *vt;
        } else if (*vt != *out) {
          if (IsNumeric(*vt) && IsNumeric(*out)) {
            out = DataType::kDouble;  // mixed numeric branches widen
          } else {
            report->Add(DiagCode::kCaseBranchType, Severity::kError,
                        "CASE branches must share a type: " + TypeName(*out) +
                            " vs " + TypeName(*vt),
                        expr.loc(), where);
            broken = true;
          }
        }
      }
      auto et = CheckExpr(*expr.else_value(), input, where, report);
      if (!et.has_value()) {
        broken = true;
      } else if (out.has_value() && *et != *out) {
        if (IsNumeric(*et) && IsNumeric(*out)) {
          out = DataType::kDouble;
        } else {
          report->Add(DiagCode::kCaseBranchType, Severity::kError,
                      "CASE ELSE branch type " + TypeName(*et) +
                          " does not match " + TypeName(*out),
                      expr.loc(), where);
          broken = true;
        }
      } else if (!out.has_value()) {
        out = et;
      }
      if (broken) return std::nullopt;
      return out;
    }
  }
  return std::nullopt;
}

void CheckPredicate(const Expr& pred, const Schema& input,
                    const std::string& where, AnalysisReport* report) {
  auto t = CheckExpr(pred, input, where, report);
  if (t.has_value() && *t != DataType::kBool) {
    report->Add(DiagCode::kNonBooleanPredicate, Severity::kError,
                "predicate must be boolean, got " + TypeName(*t) + " in " +
                    pred.ToString(),
                pred.loc(), where);
    return;
  }
  // A predicate that folds to a constant is almost always a mistake: an
  // always-false one silently selects (or consumes) nothing, an always-true
  // one is dead weight. The plan specializer folds these the same way, so
  // warn here rather than letting the query quietly do nothing.
  if (auto folded = TryFoldConstantPredicate(pred)) {
    report->Add(DiagCode::kConstantPredicate, Severity::kWarning,
                std::string("predicate is constant ") +
                    (*folded ? "true (never filters anything)"
                             : "false (selects nothing)") +
                    ": " + pred.ToString(),
                pred.loc(), where);
  }
}

void AnalyzePlanNode(const PlanNode& plan, AnalysisReport* report) {
  for (const PlanPtr& c : plan.children()) AnalyzePlanNode(*c, report);
  switch (plan.kind()) {
    case PlanKind::kScan:
      break;  // relation existence is an engine-level (catalog) concern
    case PlanKind::kFilter:
      CheckPredicate(*plan.predicate(), plan.child()->output_schema(),
                     "Filter", report);
      break;
    case PlanKind::kProject: {
      const Schema& in = plan.child()->output_schema();
      for (const ExprPtr& e : plan.projections()) {
        CheckExpr(*e, in, "Project", report);
      }
      break;
    }
    case PlanKind::kHashJoin: {
      const Schema& ls = plan.child(0)->output_schema();
      const Schema& rs = plan.child(1)->output_schema();
      bool in_range = true;
      if (plan.left_key() >= ls.num_fields()) {
        report->Add(DiagCode::kJoinKeyOutOfRange, Severity::kError,
                    "left join key #" + std::to_string(plan.left_key()) +
                        " exceeds arity " + std::to_string(ls.num_fields()),
                    {}, "HashJoin");
        in_range = false;
      }
      if (plan.right_key() >= rs.num_fields()) {
        report->Add(DiagCode::kJoinKeyOutOfRange, Severity::kError,
                    "right join key #" + std::to_string(plan.right_key()) +
                        " exceeds arity " + std::to_string(rs.num_fields()),
                    {}, "HashJoin");
        in_range = false;
      }
      if (in_range) {
        DataType lt = ls.field(plan.left_key()).type;
        DataType rt = rs.field(plan.right_key()).type;
        if (lt != rt && !(IsIntegerBacked(lt) && IsIntegerBacked(rt))) {
          report->Add(DiagCode::kJoinKeyType, Severity::kError,
                      "join key type mismatch: " + TypeName(lt) + " vs " +
                          TypeName(rt),
                      {}, "HashJoin");
        }
      }
      break;
    }
    case PlanKind::kAggregate: {
      const Schema& in = plan.child()->output_schema();
      for (size_t g : plan.group_columns()) {
        if (g >= in.num_fields()) {
          report->Add(DiagCode::kAggregateColumnOutOfRange, Severity::kError,
                      "group column #" + std::to_string(g) +
                          " exceeds input arity " +
                          std::to_string(in.num_fields()),
                      {}, "Aggregate");
        }
      }
      for (const AggSpec& a : plan.aggregates()) {
        if (a.count_star) continue;
        if (a.input_column >= in.num_fields()) {
          report->Add(DiagCode::kAggregateColumnOutOfRange, Severity::kError,
                      "aggregate input column #" +
                          std::to_string(a.input_column) +
                          " exceeds input arity " +
                          std::to_string(in.num_fields()),
                      {}, "Aggregate");
          continue;
        }
        DataType t = in.field(a.input_column).type;
        // Mirrors the runtime CheckAggregatable: every aggregate — count
        // over an explicit column included — folds values through the
        // numeric accumulator.
        if (!IsNumeric(t) && t != DataType::kBool) {
          report->Add(DiagCode::kAggregateInputType, Severity::kError,
                      std::string(AggFuncToString(a.func)) + "('" +
                          in.field(a.input_column).name +
                          "') cannot aggregate values of type " + TypeName(t),
                      {}, "Aggregate");
        }
      }
      break;
    }
    case PlanKind::kSort: {
      const Schema& in = plan.child()->output_schema();
      for (const SortKey& k : plan.sort_keys()) {
        if (k.column >= in.num_fields()) {
          report->Add(DiagCode::kSortKeyOutOfRange, Severity::kError,
                      "sort key #" + std::to_string(k.column) +
                          " exceeds input arity " +
                          std::to_string(in.num_fields()),
                      {}, "Sort");
        }
      }
      break;
    }
    case PlanKind::kUnion: {
      const Schema& ls = plan.child(0)->output_schema();
      const Schema& rs = plan.child(1)->output_schema();
      if (ls.num_fields() != rs.num_fields()) {
        report->Add(DiagCode::kUnionArity, Severity::kError,
                    "union children have arity " +
                        std::to_string(ls.num_fields()) + " vs " +
                        std::to_string(rs.num_fields()),
                    {}, "Union");
        break;
      }
      for (size_t i = 0; i < ls.num_fields(); ++i) {
        if (ls.field(i).type != rs.field(i).type) {
          report->Add(DiagCode::kUnionColumnType, Severity::kError,
                      "union column #" + std::to_string(i) +
                          " type mismatch: " + TypeName(ls.field(i).type) +
                          " vs " + TypeName(rs.field(i).type),
                      {}, "Union");
        }
      }
      break;
    }
    case PlanKind::kDistinct:
    case PlanKind::kLimit:
      break;  // row-shape preserving, no typed state of their own
  }
}

AnalysisReport AnalyzePlan(const PlanNode& plan) {
  AnalysisReport report;
  AnalyzePlanNode(plan, &report);
  return report;
}

}  // namespace analysis
}  // namespace datacell
