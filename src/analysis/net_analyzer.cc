#include "analysis/net_analyzer.h"

#include <map>
#include <set>
#include <string_view>

#include "analysis/interval.h"
#include "analysis/partition_analyzer.h"

namespace datacell {
namespace analysis {

namespace {

/// MergeEmitter union baskets carry the `__partials` suffix (the merge
/// plan's scan binding). They live in the sharded frontend and are drained
/// by a frontend MergeEmitter outside any single engine's projected net, so
/// within a projection they look append-only — exempt from N001 like the
/// sys.* telemetry places.
bool IsPartialsUnionPlace(const std::string& name) {
  constexpr std::string_view suffix = kPartialsBinding;
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

const char* KindNoun(NetNodeKind k) {
  switch (k) {
    case NetNodeKind::kReceptor:
      return "receptor";
    case NetNodeKind::kFactory:
      return "factory";
    case NetNodeKind::kEmitter:
      return "emitter";
    case NetNodeKind::kSharedFilter:
      return "shared filter";
    case NetNodeKind::kOther:
      return "transition";
  }
  return "transition";
}

/// Reports N005/N006 for one chain. Links whose predicates fall outside the
/// interval fragment (string matches, multi-column, functions) make the
/// chain unanalyzable and it is skipped — no false positives.
void AnalyzeChain(const NetChain& chain, AnalysisReport* report) {
  if (chain.links.size() < 2) return;
  std::vector<IntervalSet> sets;
  std::optional<size_t> column;
  for (const ChainLink& link : chain.links) {
    if (link.predicate == nullptr) {
      sets.push_back(IntervalSet::All());
      continue;
    }
    size_t col = 0;
    auto set = IntervalSet::FromPredicate(*link.predicate, &col);
    if (!set.has_value()) return;
    if (column.has_value() && *column != col) return;
    column = col;
    sets.push_back(std::move(*set));
  }
  for (size_t i = 0; i < sets.size(); ++i) {
    for (size_t j = i + 1; j < sets.size(); ++j) {
      IntervalSet overlap = sets[i].Intersect(sets[j]);
      if (!overlap.IsEmpty()) {
        report->Add(
            DiagCode::kChainPredicateOverlap, Severity::kWarning,
            "chained predicates of '" + chain.links[i].transition + "' and '" +
                chain.links[j].transition + "' overlap on " +
                overlap.ToString() +
                ": the earlier link consumes tuples the later one expects",
            {}, "chain on stream '" + chain.stream + "'");
      }
    }
  }
  IntervalSet covered;
  for (const IntervalSet& s : sets) covered = covered.Union(s);
  IntervalSet gap = covered.Complement();
  if (!gap.IsEmpty()) {
    report->Add(DiagCode::kChainCoverageGap, Severity::kWarning,
                "chained predicates leave " + gap.ToString() +
                    " uncovered: tuples in the gap are dropped at the chain "
                    "tail",
                {}, "chain on stream '" + chain.stream + "'");
  }
}

}  // namespace

void AnalyzeTopology(const NetTopology& net, AnalysisReport* report) {
  // Index producers and consumers per place. Places referenced by a
  // transition but missing from `places` are treated as external (lenient:
  // the projection, not the analyzer, is authoritative about feeds).
  std::map<std::string, const NetPlace*> places;
  for (const NetPlace& p : net.places) places[p.name] = &p;
  std::map<std::string, std::vector<const NetTransition*>> producers;
  std::map<std::string, std::vector<const NetTransition*>> consumers;
  for (const NetTransition& t : net.transitions) {
    for (const std::string& p : t.inputs) consumers[p].push_back(&t);
    for (const std::string& p : t.outputs) producers[p].push_back(&t);
  }

  // N001: a basket tuples can reach but nothing ever drains. System
  // telemetry baskets are exempt: they are bounded ring-like stores meant to
  // be sampled (one-time queries, HTTP endpoints), not necessarily drained.
  for (const NetPlace& p : net.places) {
    if (p.system || IsPartialsUnionPlace(p.name)) continue;
    bool fed = p.external_feed || !producers[p.name].empty();
    if (!fed || !consumers[p.name].empty()) continue;
    std::string msg = "basket '" + p.name + "' is appended to but never read";
    msg += p.bounded ? " (bounded: older tuples are shed, results are lost)"
                     : " and grows without bound";
    report->Add(DiagCode::kOrphanBasket, Severity::kWarning, msg, {}, p.name);
  }

  // N002: a transition waiting on a place nothing feeds never fires.
  for (const NetTransition& t : net.transitions) {
    for (const std::string& in : t.inputs) {
      auto it = places.find(in);
      bool external = it == places.end() || it->second->external_feed;
      if (external || !producers[in].empty()) continue;
      report->Add(DiagCode::kDeadTransition, Severity::kError,
                  std::string(KindNoun(t.kind)) + " '" + t.name +
                      "' reads basket '" + in +
                      "' which no transition or external feed ever fills: "
                      "it will never fire",
                  {}, t.name);
    }
  }

  // N003: cycles in the transition graph (t -> u when an output place of t
  // is an input place of u). A cycle re-feeds its own input: unbounded
  // self-amplification the scheduler can never drain.
  std::map<const NetTransition*, std::vector<const NetTransition*>> edges;
  for (const NetTransition& t : net.transitions) {
    for (const std::string& out : t.outputs) {
      for (const NetTransition* u : consumers[out]) {
        edges[&t].push_back(u);
      }
    }
  }
  std::set<const NetTransition*> done;
  std::set<const NetTransition*> on_stack;
  std::vector<const NetTransition*> stack;
  bool cycle_reported = false;
  auto dfs = [&](const NetTransition* t, auto&& self) -> void {
    if (cycle_reported || done.count(t) != 0) return;
    if (on_stack.count(t) != 0) {
      // Render the witness loop from the first occurrence on the stack.
      std::string path;
      bool in_cycle = false;
      for (const NetTransition* s : stack) {
        if (s == t) in_cycle = true;
        if (in_cycle) path += s->name + " -> ";
      }
      path += t->name;
      report->Add(DiagCode::kIllegalCycle, Severity::kError,
                  "transition cycle: " + path, {}, t->name);
      cycle_reported = true;
      return;
    }
    on_stack.insert(t);
    stack.push_back(t);
    for (const NetTransition* u : edges[t]) self(u, self);
    stack.pop_back();
    on_stack.erase(t);
    done.insert(t);
  };
  for (const NetTransition& t : net.transitions) dfs(&t, dfs);

  // N004: several shared-watermark readers pin every tuple until the
  // slowest has seen it, and drains fall back to copying slices instead of
  // stealing the buffers.
  for (const NetPlace& p : net.places) {
    if (p.num_readers <= 1) continue;
    report->Add(DiagCode::kMultiReaderStealing, Severity::kWarning,
                "basket '" + p.name + "' has " +
                    std::to_string(p.num_readers) +
                    " shared readers: zero-copy buffer stealing is disabled "
                    "and drains copy (consider the separate or chained "
                    "strategy)",
                {}, p.name);
  }

  for (const NetChain& chain : net.chains) AnalyzeChain(chain, report);
}

AnalysisReport AnalyzeTopology(const NetTopology& net) {
  AnalysisReport report;
  AnalyzeTopology(net, &report);
  return report;
}

}  // namespace analysis
}  // namespace datacell
