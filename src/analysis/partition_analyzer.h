#ifndef DATACELL_ANALYSIS_PARTITION_ANALYZER_H_
#define DATACELL_ANALYSIS_PARTITION_ANALYZER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "analysis/diagnostic.h"
#include "analysis/key_set.h"
#include "sql/planner.h"

namespace datacell {
namespace analysis {

/// Pass 3: partition-safety analysis. Classifies a compiled (continuous)
/// query for the coming shard fan-out by propagating the KeyFlow lattice
/// (key_set.h) bottom-up through the plan. Every verdict other than kPinned
/// comes with an executable witness: `partial_plan` runs unchanged on each
/// shard, and `merge_plan` (when present) recombines the per-shard outputs —
/// the split-merge oracle below replays exactly that recipe against
/// single-node execution.
enum class PartitionVerdict {
  kPartitionable,    // per-shard results concatenate to the global result
  kNeedsFinalMerge,  // per-shard partials + a merge plan reproduce it
  kNeedsBroadcast,   // partitionable once the listed inputs are replicated
  kPinned,           // no safe fan-out; runs on a single shard
};

enum class MergeKind {
  kNone,         // concatenation is the merge
  kReaggregate,  // merge plan re-aggregates decomposed partials
  kOrderedMerge, // merge plan re-sorts (k-way ts-merge equivalent)
};

/// How one stream input's rows reach the shards.
enum class ShardKeyKind {
  kHash,      // hash-split on `key_column`
  kAnySplit,  // any disjoint split works (no co-location constraint)
  kBroadcast, // every shard sees every row
};

struct ShardKey {
  std::string basket;
  std::string bind_name;
  ShardKeyKind kind = ShardKeyKind::kAnySplit;
  size_t key_column = 0;  // basket column index, kHash only
  std::string key_name;   // basket column name, kHash only
  bool declared = false;  // key matches the receptor's declared partition key
};

/// Relation name the synthesized merge plan scans the concatenated
/// per-shard partials under.
inline constexpr const char* kPartialsBinding = "__partials";

struct PartitionReport {
  PartitionVerdict verdict = PartitionVerdict::kPinned;
  std::string pinned_reason;
  std::vector<ShardKey> inputs;  // one per ContinuousInput, same order
  /// Static tables that must be replicated to every shard (join sides).
  std::vector<std::string> broadcast_relations;
  MergeKind merge = MergeKind::kNone;
  /// Time-window queries merge once per aligned window round.
  bool merge_per_window = false;
  /// Output column that still carries a shard key, when one survives the
  /// projections — downstream queries over the emitted stream inherit it.
  std::optional<size_t> output_key_column;
  std::string output_key_name;
  /// Per-shard plan. Equals the query plan unless merge == kReaggregate
  /// (aggregates decomposed, post-aggregate operators moved to the merge
  /// side) or kOrderedMerge (sort/limit moved to the merge side).
  PlanPtr partial_plan;
  /// Merge plan over Scan(kPartialsBinding); null when merge == kNone.
  PlanPtr merge_plan;

  /// Multi-line human-readable summary, for `\analyze`.
  std::string Describe() const;
  /// One JSON object (single line) — the machine-readable shard plan the
  /// sharding PR consumes, also emitted by `datacell-lint
  /// --partition-report`.
  std::string ToJson() const;
};

const char* PartitionVerdictName(PartitionVerdict v);
const char* MergeKindName(MergeKind m);

/// Declared receptor partition keys: basket name (lowercase) -> basket
/// column index, from `CREATE STREAM ... PARTITION BY <col>`.
using PartitionKeyMap = std::map<std::string, size_t>;

/// Runs pass 3 over a compiled query. Advisory A0xx diagnostics land in
/// `report` (never errors; pass 3 cannot reject a query). Non-continuous
/// queries classify as kPinned ("one-time query"). Plan shapes the planner
/// cannot produce (aggregates under joins, etc.) classify conservatively as
/// kPinned — pinning is always sound.
Result<PartitionReport> AnalyzePartitioning(const sql::CompiledQuery& query,
                                            const PartitionKeyMap& declared,
                                            AnalysisReport* report);

struct SplitMergeResult {
  bool equivalent = false;
  std::string detail;  // mismatch description, empty when equivalent
};

/// Soundness oracle: executes `query.plan` once over the full inputs, then
/// splits each stream input across `num_shards` shards per the report's
/// ShardKeys, runs `partial_plan` per shard, merges per `merge_plan` (or
/// concatenates), and compares. `input_tables[i]` is a full basket-shaped
/// table for `query.inputs[i]` (the consume predicate is applied here, as
/// the factory would); `statics` binds any static relations the plan scans.
/// For plans ending in LIMIT the comparison covers row count and sort-key
/// columns only (SQL leaves the cut line's tie-break unspecified); all other
/// plans compare full row multisets, with tolerance on doubles (per-shard
/// summation reassociates).
Result<SplitMergeResult> CheckSplitMergeEquivalence(
    const sql::CompiledQuery& query, const PartitionReport& report,
    const std::vector<TablePtr>& input_tables, const PlanBindings& statics,
    size_t num_shards = 2);

}  // namespace analysis
}  // namespace datacell

#endif  // DATACELL_ANALYSIS_PARTITION_ANALYZER_H_
