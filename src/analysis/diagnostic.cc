#include "analysis/diagnostic.h"

namespace datacell {
namespace analysis {

const char* DiagCodeId(DiagCode code) {
  switch (code) {
    case DiagCode::kColumnOutOfRange:
      return "P002";
    case DiagCode::kNonBooleanPredicate:
      return "P003";
    case DiagCode::kArithmeticType:
      return "P004";
    case DiagCode::kComparisonType:
      return "P005";
    case DiagCode::kLogicalType:
      return "P006";
    case DiagCode::kLikeType:
      return "P007";
    case DiagCode::kNotType:
      return "P008";
    case DiagCode::kNegType:
      return "P009";
    case DiagCode::kFunctionArgType:
      return "P010";
    case DiagCode::kCaseConditionType:
      return "P011";
    case DiagCode::kCaseBranchType:
      return "P012";
    case DiagCode::kJoinKeyOutOfRange:
      return "P013";
    case DiagCode::kJoinKeyType:
      return "P014";
    case DiagCode::kUnionArity:
      return "P015";
    case DiagCode::kUnionColumnType:
      return "P016";
    case DiagCode::kAggregateInputType:
      return "P017";
    case DiagCode::kAggregateColumnOutOfRange:
      return "P018";
    case DiagCode::kSortKeyOutOfRange:
      return "P019";
    case DiagCode::kDeclaredTypeMismatch:
      return "P020";
    case DiagCode::kSchemaMismatch:
      return "P021";
    case DiagCode::kUnknownRelation:
      return "P022";
    case DiagCode::kConstantPredicate:
      return "P023";
    case DiagCode::kOrphanBasket:
      return "N001";
    case DiagCode::kDeadTransition:
      return "N002";
    case DiagCode::kIllegalCycle:
      return "N003";
    case DiagCode::kMultiReaderStealing:
      return "N004";
    case DiagCode::kChainPredicateOverlap:
      return "N005";
    case DiagCode::kChainCoverageGap:
      return "N006";
    case DiagCode::kReshuffleRequired:
      return "A001";
    case DiagCode::kPrescribedPartitionKey:
      return "A002";
    case DiagCode::kPartitionKeyDropped:
      return "A003";
    case DiagCode::kBroadcastJoinInput:
      return "A004";
    case DiagCode::kOrderedMergeRequired:
      return "A005";
    case DiagCode::kWindowMergeRequired:
      return "A006";
    case DiagCode::kPinnedQuery:
      return "A007";
    case DiagCode::kScalarAggMerge:
      return "A008";
    case DiagCode::kStateBoundNote:
      return "S001";
    case DiagCode::kUnboundedJoinState:
      return "S002";
    case DiagCode::kUnboundedKeyState:
      return "S003";
    case DiagCode::kCardinalityHintUsed:
      return "S004";
    case DiagCode::kWindowStateBound:
      return "S005";
    case DiagCode::kBasketRetention:
      return "S006";
    case DiagCode::kStateBoundExceeded:
      return "S007";
    case DiagCode::kEngineStateExceeded:
      return "S008";
    case DiagCode::kShardStateMultiplied:
      return "S009";
  }
  return "P000";
}

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kColumnOutOfRange:
      return "column-out-of-range";
    case DiagCode::kNonBooleanPredicate:
      return "non-boolean-predicate";
    case DiagCode::kArithmeticType:
      return "arithmetic-type";
    case DiagCode::kComparisonType:
      return "comparison-type";
    case DiagCode::kLogicalType:
      return "logical-type";
    case DiagCode::kLikeType:
      return "like-type";
    case DiagCode::kNotType:
      return "not-type";
    case DiagCode::kNegType:
      return "neg-type";
    case DiagCode::kFunctionArgType:
      return "function-arg-type";
    case DiagCode::kCaseConditionType:
      return "case-condition-type";
    case DiagCode::kCaseBranchType:
      return "case-branch-type";
    case DiagCode::kJoinKeyOutOfRange:
      return "join-key-out-of-range";
    case DiagCode::kJoinKeyType:
      return "join-key-type";
    case DiagCode::kUnionArity:
      return "union-arity";
    case DiagCode::kUnionColumnType:
      return "union-column-type";
    case DiagCode::kAggregateInputType:
      return "aggregate-input-type";
    case DiagCode::kAggregateColumnOutOfRange:
      return "aggregate-column-out-of-range";
    case DiagCode::kSortKeyOutOfRange:
      return "sort-key-out-of-range";
    case DiagCode::kDeclaredTypeMismatch:
      return "declared-type-mismatch";
    case DiagCode::kSchemaMismatch:
      return "schema-mismatch";
    case DiagCode::kUnknownRelation:
      return "unknown-relation";
    case DiagCode::kConstantPredicate:
      return "constant-predicate";
    case DiagCode::kOrphanBasket:
      return "orphan-basket";
    case DiagCode::kDeadTransition:
      return "dead-transition";
    case DiagCode::kIllegalCycle:
      return "illegal-cycle";
    case DiagCode::kMultiReaderStealing:
      return "multi-reader-stealing";
    case DiagCode::kChainPredicateOverlap:
      return "chain-predicate-overlap";
    case DiagCode::kChainCoverageGap:
      return "chain-coverage-gap";
    case DiagCode::kReshuffleRequired:
      return "reshuffle-required";
    case DiagCode::kPrescribedPartitionKey:
      return "prescribed-partition-key";
    case DiagCode::kPartitionKeyDropped:
      return "partition-key-dropped";
    case DiagCode::kBroadcastJoinInput:
      return "broadcast-join-input";
    case DiagCode::kOrderedMergeRequired:
      return "ordered-merge-required";
    case DiagCode::kWindowMergeRequired:
      return "window-merge-required";
    case DiagCode::kPinnedQuery:
      return "pinned-query";
    case DiagCode::kScalarAggMerge:
      return "scalar-agg-merge";
    case DiagCode::kStateBoundNote:
      return "state-bound";
    case DiagCode::kUnboundedJoinState:
      return "unbounded-join-state";
    case DiagCode::kUnboundedKeyState:
      return "unbounded-key-state";
    case DiagCode::kCardinalityHintUsed:
      return "cardinality-hint-used";
    case DiagCode::kWindowStateBound:
      return "window-state-bound";
    case DiagCode::kBasketRetention:
      return "basket-retention";
    case DiagCode::kStateBoundExceeded:
      return "state-bound-exceeded";
    case DiagCode::kEngineStateExceeded:
      return "engine-state-exceeded";
    case DiagCode::kShardStateMultiplied:
      return "shard-state-multiplied";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  std::string out = severity == Severity::kError     ? "error["
                    : severity == Severity::kWarning ? "warning["
                                                     : "note[";
  out += DiagCodeId(code);
  out += "] ";
  out += DiagCodeName(code);
  out += ": ";
  out += message;
  if (loc.valid()) {
    out += " (at ";
    out += loc.ToString();
    out += ")";
  }
  if (!object.empty()) {
    out += " [in ";
    out += object;
    out += "]";
  }
  return out;
}

void AnalysisReport::Add(DiagCode code, Severity severity, std::string message,
                         SourceLoc loc, std::string object) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.loc = loc;
  d.object = std::move(object);
  diagnostics_.push_back(std::move(d));
}

size_t AnalysisReport::num_errors() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t AnalysisReport::num_warnings() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kWarning) ++n;
  }
  return n;
}

size_t AnalysisReport::num_notes() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kNote) ++n;
  }
  return n;
}

bool AnalysisReport::Has(DiagCode code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string AnalysisReport::ToString() const {
  if (diagnostics_.empty()) return "no issues found\n";
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += d.ToString();
    out += "\n";
  }
  out += std::to_string(num_errors()) + " error(s), " +
         std::to_string(num_warnings()) + " warning(s)";
  if (num_notes() > 0) out += ", " + std::to_string(num_notes()) + " note(s)";
  out += "\n";
  return out;
}

Status AnalysisReport::ToStatus() const {
  if (ok()) return Status::OK();
  return Status::TypeError("static analysis rejected the plan:\n" +
                           ToString());
}

}  // namespace analysis
}  // namespace datacell
