#ifndef DATACELL_ANALYSIS_KEY_SET_H_
#define DATACELL_ANALYSIS_KEY_SET_H_

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace datacell {
namespace analysis {

/// Where an output column's value comes from: basket column `column` of
/// stream input `input` (the ContinuousInput ordinal), reached through a
/// value-preserving chain of scans, filters and plain column-ref
/// projections. Columns produced by arithmetic, functions or aggregates
/// have no origin.
struct ColOrigin {
  size_t input = 0;
  size_t column = 0;

  bool operator==(const ColOrigin& o) const {
    return input == o.input && column == o.column;
  }
};

/// The partition-key lattice value of one plan subtree:
///
///   kAny    (top)  — per-row operators only; ANY disjoint split of the
///                    stream inputs' rows gives per-shard results whose
///                    concatenation equals the global result.
///   kKeyed         — safe iff every stream input in `required` is
///                    hash-split on exactly the named basket column
///                    (co-location constraints from joins / distinct /
///                    group-by).
///   kPinned (bot)  — no split is safe; the query must run on one shard.
///
/// Alongside the lattice value, `origins` tracks per-output-column value
/// provenance (the witness that a downstream operator's column IS a split
/// key), and the broadcast sets record inputs whose rows must be replicated
/// to every shard rather than split.
struct KeyFlow {
  enum class Req { kAny, kKeyed, kPinned };

  Req req = Req::kAny;
  /// Stream-input ordinal -> basket column index the input must be split on.
  std::map<size_t, size_t> required;
  /// Per output column of this subtree, its stream provenance (if any).
  std::vector<std::optional<ColOrigin>> origins;
  std::string pinned_reason;
  bool has_stream = false;
  /// Static (non-basket) relations scanned in this subtree. Under a join
  /// these become broadcast tables.
  std::vector<std::string> static_relations;
  /// Stream inputs whose rows must be broadcast to every shard (join sides
  /// that could not be co-partitioned).
  std::set<size_t> broadcast_inputs;
  /// Every stream-input ordinal scanned in this subtree.
  std::set<size_t> stream_inputs;

  static KeyFlow StreamScan(size_t input, size_t num_columns);
  static KeyFlow StaticScan(const std::string& relation, size_t num_columns);
  static KeyFlow Pinned(std::string reason);

  bool pinned() const { return req == Req::kPinned; }

  /// Adds the constraint "input must be split on basket column `column`".
  /// Returns false (and pins the flow) when the input is already required
  /// at a different column.
  bool RequireKey(size_t input, size_t column);

  /// Folds another subtree's constraints into this one (join/union
  /// combination): requirement maps must agree input-by-input, broadcast
  /// and static sets union. Origins are NOT merged (callers rebuild them
  /// from the operator's output layout). Returns false and pins on
  /// conflict.
  bool CombineConstraints(const KeyFlow& other);
};

}  // namespace analysis
}  // namespace datacell

#endif  // DATACELL_ANALYSIS_KEY_SET_H_
