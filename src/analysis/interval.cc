#include "analysis/interval.h"

#include <algorithm>

#include "algebra/lowering.h"

namespace datacell {
namespace analysis {

namespace {

std::string FormatNum(double v) {
  // Render integral values without the trailing ".000000".
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    return std::to_string(static_cast<int64_t>(v));
  }
  return std::to_string(v);
}

/// True when `a`'s lower bound starts before `b`'s (ties: closed first).
bool LoLess(const Interval& a, const Interval& b) {
  if (a.unbounded_lo != b.unbounded_lo) return a.unbounded_lo;
  if (a.unbounded_lo) return false;
  if (a.lo != b.lo) return a.lo < b.lo;
  return !a.lo_open && b.lo_open;
}

/// True when `b`'s lower bound lies at or before `a`'s upper bound closely
/// enough that [a, b] merge into one interval (overlap or touching).
bool Touches(const Interval& a, const Interval& b) {
  if (a.unbounded_hi || b.unbounded_lo) return true;
  if (b.lo < a.hi) return true;
  if (b.lo > a.hi) return false;
  return !(a.hi_open && b.lo_open);  // share or cover the common point
}

/// True when `a`'s upper bound reaches at least as far as `b`'s.
bool HiGeq(const Interval& a, const Interval& b) {
  if (a.unbounded_hi) return true;
  if (b.unbounded_hi) return false;
  if (a.hi != b.hi) return a.hi > b.hi;
  return !a.hi_open || b.hi_open;
}

bool EmptyInterval(const Interval& iv) {
  if (iv.unbounded_lo || iv.unbounded_hi) return false;
  if (iv.lo > iv.hi) return true;
  return iv.lo == iv.hi && (iv.lo_open || iv.hi_open);
}

}  // namespace

bool Interval::Contains(double v) const {
  if (!unbounded_lo) {
    if (lo_open ? v <= lo : v < lo) return false;
  }
  if (!unbounded_hi) {
    if (hi_open ? v >= hi : v > hi) return false;
  }
  return true;
}

std::string Interval::ToString() const {
  std::string out = lo_open || unbounded_lo ? "(" : "[";
  out += unbounded_lo ? "-inf" : FormatNum(lo);
  out += ", ";
  out += unbounded_hi ? "+inf" : FormatNum(hi);
  out += hi_open || unbounded_hi ? ")" : "]";
  return out;
}

IntervalSet IntervalSet::All() {
  Interval iv;
  iv.unbounded_lo = true;
  iv.unbounded_hi = true;
  return Single(iv);
}

IntervalSet IntervalSet::Single(Interval iv) {
  IntervalSet s;
  if (!EmptyInterval(iv)) s.intervals_.push_back(iv);
  return s;
}

void IntervalSet::Normalize() {
  std::vector<Interval> in;
  in.swap(intervals_);
  in.erase(std::remove_if(in.begin(), in.end(), EmptyInterval), in.end());
  std::sort(in.begin(), in.end(), LoLess);
  for (Interval& iv : in) {
    if (!intervals_.empty() && Touches(intervals_.back(), iv)) {
      Interval& cur = intervals_.back();
      if (!HiGeq(cur, iv)) {
        cur.hi = iv.hi;
        cur.hi_open = iv.hi_open;
        cur.unbounded_hi = iv.unbounded_hi;
      }
    } else {
      intervals_.push_back(iv);
    }
  }
}

IntervalSet IntervalSet::Union(const IntervalSet& other) const {
  IntervalSet out;
  out.intervals_ = intervals_;
  out.intervals_.insert(out.intervals_.end(), other.intervals_.begin(),
                        other.intervals_.end());
  out.Normalize();
  return out;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& other) const {
  IntervalSet out;
  for (const Interval& a : intervals_) {
    for (const Interval& b : other.intervals_) {
      Interval iv;
      // Lower bound: the later of the two starts.
      const Interval& lo_src = LoLess(a, b) ? b : a;
      iv.lo = lo_src.lo;
      iv.lo_open = lo_src.lo_open;
      iv.unbounded_lo = lo_src.unbounded_lo;
      // Upper bound: the earlier of the two ends.
      const Interval& hi_src = HiGeq(a, b) ? b : a;
      iv.hi = hi_src.hi;
      iv.hi_open = hi_src.hi_open;
      iv.unbounded_hi = hi_src.unbounded_hi;
      if (!EmptyInterval(iv)) out.intervals_.push_back(iv);
    }
  }
  out.Normalize();
  return out;
}

IntervalSet IntervalSet::Complement() const {
  if (intervals_.empty()) return All();
  IntervalSet out;
  const Interval& first = intervals_.front();
  if (!first.unbounded_lo) {
    Interval head;
    head.unbounded_lo = true;
    head.hi = first.lo;
    head.hi_open = !first.lo_open;
    out.intervals_.push_back(head);
  }
  for (size_t i = 0; i + 1 < intervals_.size(); ++i) {
    Interval gap;
    gap.lo = intervals_[i].hi;
    gap.lo_open = !intervals_[i].hi_open;
    gap.hi = intervals_[i + 1].lo;
    gap.hi_open = !intervals_[i + 1].lo_open;
    if (!EmptyInterval(gap)) out.intervals_.push_back(gap);
  }
  const Interval& last = intervals_.back();
  if (!last.unbounded_hi) {
    Interval tail;
    tail.lo = last.hi;
    tail.lo_open = !last.hi_open;
    tail.unbounded_hi = true;
    out.intervals_.push_back(tail);
  }
  out.Normalize();
  return out;
}

bool IntervalSet::IsAll() const {
  return intervals_.size() == 1 && intervals_[0].unbounded_lo &&
         intervals_[0].unbounded_hi;
}

bool IntervalSet::Contains(double v) const {
  for (const Interval& iv : intervals_) {
    if (iv.Contains(v)) return true;
  }
  return false;
}

std::string IntervalSet::ToString() const {
  if (intervals_.empty()) return "(empty)";
  std::string out;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += " u ";
    out += intervals_[i].ToString();
  }
  return out;
}

namespace {

/// Numeric literal value, or nullopt when out of the fragment. Goes through
/// MatchLiteral so negative constants — which the parser produces as a
/// unary minus over a positive literal, e.g. in `a > -5` or the desugared
/// `a between -5 and 5` — stay in the fragment.
std::optional<double> LiteralNum(const Expr& e) {
  Value v;
  if (!MatchLiteral(e, &v)) return std::nullopt;
  if (v.is_null()) return std::nullopt;
  switch (v.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return static_cast<double>(v.int64_value());
    case DataType::kDouble:
      return v.double_value();
    default:
      return std::nullopt;
  }
}

std::optional<IntervalSet> FromCmp(BinaryOp op, double v) {
  Interval iv;
  switch (op) {
    case BinaryOp::kEq:
      iv.lo = iv.hi = v;
      return IntervalSet::Single(iv);
    case BinaryOp::kNe:
      iv.lo = iv.hi = v;
      return IntervalSet::Single(iv).Complement();
    case BinaryOp::kLt:
      iv.unbounded_lo = true;
      iv.hi = v;
      iv.hi_open = true;
      return IntervalSet::Single(iv);
    case BinaryOp::kLe:
      iv.unbounded_lo = true;
      iv.hi = v;
      return IntervalSet::Single(iv);
    case BinaryOp::kGt:
      iv.lo = v;
      iv.lo_open = true;
      iv.unbounded_hi = true;
      return IntervalSet::Single(iv);
    case BinaryOp::kGe:
      iv.lo = v;
      iv.unbounded_hi = true;
      return IntervalSet::Single(iv);
    default:
      return std::nullopt;
  }
}

BinaryOp FlipCmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

std::optional<IntervalSet> Model(const Expr& e,
                                 std::optional<size_t>* column) {
  if (e.kind() == ExprKind::kUnary && e.unary_op() == UnaryOp::kNot) {
    auto inner = Model(*e.operand(), column);
    if (!inner.has_value()) return std::nullopt;
    return inner->Complement();
  }
  if (e.kind() != ExprKind::kBinary) return std::nullopt;
  BinaryOp op = e.binary_op();
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    auto l = Model(*e.left(), column);
    if (!l.has_value()) return std::nullopt;
    auto r = Model(*e.right(), column);
    if (!r.has_value()) return std::nullopt;
    return op == BinaryOp::kAnd ? l->Intersect(*r) : l->Union(*r);
  }
  // Comparison atom: column <cmp> literal, either operand order.
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (e.left()->kind() == ExprKind::kColumnRef) {
    col = e.left().get();
    lit = e.right().get();
  } else if (e.right()->kind() == ExprKind::kColumnRef) {
    col = e.right().get();
    lit = e.left().get();
    flipped = true;
  } else {
    return std::nullopt;
  }
  std::optional<double> v = LiteralNum(*lit);
  if (!v.has_value()) return std::nullopt;
  if (column->has_value() && **column != col->column_index()) {
    return std::nullopt;  // predicates over two columns: out of the fragment
  }
  *column = col->column_index();
  return FromCmp(flipped ? FlipCmp(op) : op, *v);
}

}  // namespace

std::optional<IntervalSet> IntervalSet::FromPredicate(const Expr& pred,
                                                      size_t* column_index) {
  std::optional<size_t> column;
  auto set = Model(pred, &column);
  if (!set.has_value() || !column.has_value()) return std::nullopt;
  *column_index = *column;
  return set;
}

}  // namespace analysis
}  // namespace datacell
