#ifndef DATACELL_ANALYSIS_NET_ANALYZER_H_
#define DATACELL_ANALYSIS_NET_ANALYZER_H_

#include <string>
#include <vector>

#include "algebra/expression.h"
#include "analysis/diagnostic.h"

namespace datacell {
namespace analysis {

/// Pass 2: dataflow lints over an abstract view of the engine's Petri net.
/// The engine (or a test) projects its baskets and transitions into a
/// NetTopology; the analyzer never touches live core objects, so it stays
/// free of the core library and runnable on hand-built fixtures.

/// What a transition does — only used to phrase diagnostics.
enum class NetNodeKind { kReceptor, kFactory, kEmitter, kSharedFilter, kOther };

/// A place (basket). `external_feed` marks baskets the application can
/// legitimately append to from outside the net (user streams and their
/// ingest-router fan-out targets); engine-created query outputs are fed only
/// by their factory. `num_readers` counts registered shared-watermark
/// readers; `bounded` means a shedding capacity is set.
struct NetPlace {
  std::string name;
  bool external_feed = false;
  size_t num_readers = 0;
  bool bounded = false;
  /// Reserved telemetry basket (sys.*): sampled by one-time queries or HTTP
  /// scrapes rather than drained, and bounded by construction — exempt from
  /// the orphan lint (N001).
  bool system = false;
};

/// A transition with its input and output places (by place name).
struct NetTransition {
  std::string name;
  NetNodeKind kind = NetNodeKind::kOther;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
};

/// One link of a disjoint-predicate chain: the draining transition and the
/// basket predicate it keeps (null = keeps everything).
struct ChainLink {
  std::string transition;
  ExprPtr predicate;
};

/// A chained-strategy pipeline over one stream, in chain order.
struct NetChain {
  std::string stream;
  std::vector<ChainLink> links;
};

struct NetTopology {
  std::vector<NetPlace> places;
  std::vector<NetTransition> transitions;
  std::vector<NetChain> chains;
};

/// Runs all net lints, appending to `report`:
///  N001 orphan-basket: appended-to but consumed by no transition.
///  N002 dead-transition: an input place nothing (external or internal) feeds.
///  N003 illegal-cycle: a directed transition cycle (self-feeding loop).
///  N004 multi-reader-stealing: >1 shared reader disables buffer stealing.
///  N005/N006: chained predicates overlapping / leaving coverage gaps.
void AnalyzeTopology(const NetTopology& net, AnalysisReport* report);

AnalysisReport AnalyzeTopology(const NetTopology& net);

}  // namespace analysis
}  // namespace datacell

#endif  // DATACELL_ANALYSIS_NET_ANALYZER_H_
