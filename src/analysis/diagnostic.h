#ifndef DATACELL_ANALYSIS_DIAGNOSTIC_H_
#define DATACELL_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "common/source_loc.h"
#include "common/status.h"

namespace datacell {
namespace analysis {

/// Stable diagnostic codes. P0xx = plan/type analysis (pass 1),
/// N0xx = Petri-net dataflow analysis (pass 2), A0xx = partition-safety
/// analysis (pass 3, advisory), S0xx = state-bound analysis (pass 4,
/// advisory unless the admission caps are set). The short id (e.g. "P004")
/// appears in every rendered message so tests and tooling can match on it;
/// never renumber an existing code.
enum class DiagCode {
  // --- pass 1: plan analyzer ---------------------------------------------
  kColumnOutOfRange,        // P002: column ref index >= input arity
  kNonBooleanPredicate,     // P003: filter/consume predicate is not boolean
  kArithmeticType,          // P004: + - * / % over non-numeric operand
  kComparisonType,          // P005: incomparable operand types
  kLogicalType,             // P006: AND/OR over non-boolean operand
  kLikeType,                // P007: LIKE over non-string operand
  kNotType,                 // P008: NOT over non-boolean operand
  kNegType,                 // P009: unary minus over non-numeric operand
  kFunctionArgType,         // P010: scalar function argument type
  kCaseConditionType,       // P011: CASE WHEN condition is not boolean
  kCaseBranchType,          // P012: CASE branches do not share a type
  kJoinKeyOutOfRange,       // P013: join key index >= child arity
  kJoinKeyType,             // P014: join key types incompatible
  kUnionArity,              // P015: union children arity mismatch
  kUnionColumnType,         // P016: union column type mismatch
  kAggregateInputType,      // P017: sum/min/max/avg over non-numeric column
  kAggregateColumnOutOfRange,  // P018: aggregate/group column out of range
  kSortKeyOutOfRange,       // P019: sort key index >= child arity
  kDeclaredTypeMismatch,    // P020: expr declared type != inferred/schema type
  kSchemaMismatch,          // P021: node output schema disagrees with inference
  kUnknownRelation,         // P022: plan scans a relation missing from catalog
  kConstantPredicate,       // P023: predicate folds to a constant (warning)
  // --- pass 2: Petri-net analyzer ----------------------------------------
  kOrphanBasket,            // N001: basket appended-to but never read
  kDeadTransition,          // N002: transition input nothing ever feeds
  kIllegalCycle,            // N003: transition cycle (self-amplifying loop)
  kMultiReaderStealing,     // N004: >1 reader disables buffer stealing
  kChainPredicateOverlap,   // N005: chained predicates overlap
  kChainCoverageGap,        // N006: chained predicates leave a coverage gap
  // --- pass 3: partition-safety analyzer (advisory; never rejects) --------
  kReshuffleRequired,       // A001: group key differs from ingest key
  kPrescribedPartitionKey,  // A002: no declared key; analyzer prescribes one
  kPartitionKeyDropped,     // A003: projection/operator drops the key
  kBroadcastJoinInput,      // A004: join side must be broadcast to shards
  kOrderedMergeRequired,    // A005: ordered emit needs k-way ts-merge
  kWindowMergeRequired,     // A006: time-window agg merges per window round
  kPinnedQuery,             // A007: query pins a single shard (with reason)
  kScalarAggMerge,          // A008: scalar aggregate needs re-aggregation
  // --- pass 4: state-bound analyzer ---------------------------------------
  kStateBoundNote,          // S001: computed per-query state bound (note)
  kUnboundedJoinState,      // S002: unwindowed stream-stream join state
  kUnboundedKeyState,       // S003: unwindowed group-by/distinct, no hint
  kCardinalityHintUsed,     // S004: key cardinality hint bounds group state
  kWindowStateBound,        // S005: window buffer bound (time = symbolic)
  kBasketRetention,         // S006: multi-reader basket retention unbounded
  kStateBoundExceeded,      // S007: bound exceeds max_query_state_bytes
  kEngineStateExceeded,     // S008: total exceeds max_engine_state_bytes
  kShardStateMultiplied,    // S009: bound multiplied by shard placement
};

/// kNote findings are purely informational: they never fail ToStatus() and
/// datacell-lint does not count them against --strict.
enum class Severity { kNote, kWarning, kError };

/// Short stable identifier, e.g. "P004".
const char* DiagCodeId(DiagCode code);
/// Kebab-case name, e.g. "arithmetic-type".
const char* DiagCodeName(DiagCode code);

/// One analyzer finding. `loc` is the SQL position when known (plans built
/// through the C++ API have none); `object` names the plan node, basket or
/// transition the finding is about.
struct Diagnostic {
  DiagCode code = DiagCode::kNonBooleanPredicate;
  Severity severity = Severity::kError;
  std::string message;
  SourceLoc loc;
  std::string object;

  /// "error[P004] arithmetic-type: ... (at 2:15) [in Project]"
  std::string ToString() const;
};

/// The structured result of an analysis run: every finding, in discovery
/// order (plan pass before net pass; most-severe first is NOT guaranteed).
class AnalysisReport {
 public:
  void Add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }
  void Add(DiagCode code, Severity severity, std::string message,
           SourceLoc loc = {}, std::string object = "");

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t num_errors() const;
  size_t num_warnings() const;
  size_t num_notes() const;
  bool ok() const { return num_errors() == 0; }

  /// True when any finding carries `code`.
  bool Has(DiagCode code) const;

  /// One line per finding plus a summary line; "no issues found" when clean.
  std::string ToString() const;

  /// OK when no error-severity findings; otherwise a TypeError whose message
  /// is the rendered report (the registration-rejection form).
  Status ToStatus() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace analysis
}  // namespace datacell

#endif  // DATACELL_ANALYSIS_DIAGNOSTIC_H_
