#ifndef DATACELL_ANALYSIS_STATE_ANALYZER_H_
#define DATACELL_ANALYSIS_STATE_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "algebra/plan.h"
#include "analysis/diagnostic.h"
#include "analysis/state_bound.h"
#include "sql/planner.h"

namespace datacell {
namespace analysis {

/// Pass 4: static state-bound analysis. Runs at registration (and again
/// from Engine::Analyze()) over a compiled continuous query and proves a
/// worst-case memory bound for every stateful operator, folds the bounds up
/// the plan and across the query's slice of the Petri net (input-basket
/// capacities and multi-reader retention), and multiplies by the shard
/// placement. Advisory by default — S0xx notes and warnings — but the
/// engine's admission caps (EngineOptions::max_query_state_bytes /
/// max_engine_state_bytes) turn an over-bound verdict into a registration
/// rejection with the same no-state-left contract as pass 1.

/// Declared key-cardinality hints: basket name (lower-cased) -> basket
/// column index -> N, from `CREATE BASKET ... WITH (cardinality(col) = N)`.
using CardinalityMap = std::map<std::string, std::map<size_t, int64_t>>;

struct StateAnalyzerOptions {
  /// Estimated bytes per string value (schema column widths are otherwise
  /// fixed). EngineOptions::state_string_bytes feeds this.
  int64_t string_bytes = 32;
  /// Shard placement multiplier from pass 3: how many engine shards hold a
  /// copy of this query's state. 1 for standalone engines.
  size_t shard_copies = 1;
  /// Shedding capacity (tuples; 0 = unbounded) of each input basket, keyed
  /// like CardinalityMap — the net-projection part of the fold.
  std::map<std::string, size_t> basket_capacity;
  /// Registered reader count per input basket: >1 means shared-basket
  /// retention is held back by the slowest reader (S006).
  std::map<std::string, size_t> basket_readers;
  /// Current row count of static (non-stream) relations the plan scans,
  /// keyed by lower-cased relation name: bounds join build sides. Absent
  /// entries make those bounds symbolic.
  std::map<std::string, int64_t> static_rows;
};

/// One stateful operator's bound, in plan-visit order.
struct OperatorStateBound {
  std::string op;   // e.g. "Aggregate(group-by)", "HashJoin(build 't')"
  StateBound bound;
  SourceLoc loc;    // first known SQL position under the operator
};

struct StateReport {
  /// The admission-relevant per-query bound: operator state + window
  /// buffers, scaled by `shard_copies`. Input-basket retention is reported
  /// separately below — it is flow state the engine's shedding config owns,
  /// not state the query itself accumulates.
  StateBound total;
  std::vector<OperatorStateBound> operators;
  /// Projected input-basket retention: numeric when every input basket has
  /// a shedding capacity, symbolic otherwise.
  StateBound retention;
  size_t shard_copies = 1;

  /// Multi-line human-readable summary, for `\analyze`.
  std::string Describe() const;
  /// One JSON object (single line), emitted by `/queries` and
  /// `datacell-lint --state-report`.
  std::string ToJson() const;
};

/// Runs pass 4 over a compiled query. S0xx diagnostics land in `report`
/// (notes and warnings only; the engine adds the S007/S008 admission errors
/// when its caps are exceeded). Non-continuous queries get a kConstant
/// bound (one-shot execution holds no cross-firing state).
Result<StateReport> AnalyzeStateBounds(const sql::CompiledQuery& query,
                                       const CardinalityMap& cardinalities,
                                       const StateAnalyzerOptions& options,
                                       AnalysisReport* report);

/// First valid SQL position found in `plan`'s expressions (predicates, then
/// projections), walking top-down; invalid when the plan was built through
/// the C++ API. Positions the S-diagnostics of operators that carry no
/// expressions of their own (joins, distinct).
SourceLoc FindPlanLoc(const PlanNode& plan);

}  // namespace analysis
}  // namespace datacell

#endif  // DATACELL_ANALYSIS_STATE_ANALYZER_H_
