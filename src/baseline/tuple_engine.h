#ifndef DATACELL_BASELINE_TUPLE_ENGINE_H_
#define DATACELL_BASELINE_TUPLE_ENGINE_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algebra/expression.h"
#include "algebra/operators.h"
#include "baseline/row_eval.h"
#include "storage/types.h"

namespace datacell {
namespace baseline {

/// A tuple-at-a-time streaming operator, Aurora-style: each incoming tuple
/// is pushed individually through a chain of operators. This is the
/// comparator architecture §4 contrasts with DataCell's batch processing —
/// it interprets expressions per tuple and dispatches virtually per
/// operator per tuple.
class TupleOperator {
 public:
  virtual ~TupleOperator() = default;
  virtual Status Process(const Row& tuple) = 0;
  /// Flushes any buffered state at end of stream (e.g. partial windows do
  /// NOT emit; counters finalise).
  virtual Status Finish() { return next_ ? next_->Finish() : Status::OK(); }

  void SetNext(TupleOperator* next) { next_ = next; }

 protected:
  Status EmitRow(const Row& tuple) {
    return next_ ? next_->Process(tuple) : Status::OK();
  }

 private:
  TupleOperator* next_ = nullptr;
};

/// Passes through tuples satisfying the predicate.
class FilterOp final : public TupleOperator {
 public:
  explicit FilterOp(ExprPtr predicate) : predicate_(std::move(predicate)) {}
  Status Process(const Row& tuple) override {
    DC_ASSIGN_OR_RETURN(bool pass, EvaluatePredicateOnRow(*predicate_, tuple));
    return pass ? EmitRow(tuple) : Status::OK();
  }

 private:
  ExprPtr predicate_;
};

/// Projects each tuple through per-tuple expression evaluation.
class MapOp final : public TupleOperator {
 public:
  explicit MapOp(std::vector<ExprPtr> exprs) : exprs_(std::move(exprs)) {}
  Status Process(const Row& tuple) override {
    Row out;
    out.reserve(exprs_.size());
    for (const ExprPtr& e : exprs_) {
      DC_ASSIGN_OR_RETURN(Value v, EvaluateExprOnRow(*e, tuple));
      out.push_back(std::move(v));
    }
    return EmitRow(out);
  }

 private:
  std::vector<ExprPtr> exprs_;
};

/// Sliding count-window aggregate, maintained per tuple (grouped by the
/// values of `group_columns`). Emits one row per group per window
/// completion: group values followed by one value per AggFunc.
class WindowAggregateOp final : public TupleOperator {
 public:
  WindowAggregateOp(std::vector<size_t> group_columns,
                    std::vector<size_t> agg_columns,
                    std::vector<AggFunc> funcs, size_t window_size,
                    size_t slide);
  Status Process(const Row& tuple) override;

 private:
  Status EmitWindow();
  std::string GroupKey(const Row& tuple) const;

  std::vector<size_t> group_columns_;
  std::vector<size_t> agg_columns_;
  std::vector<AggFunc> funcs_;
  size_t window_size_;
  size_t slide_;
  std::deque<Row> window_;  // the raw tuples of the current window
  size_t seen_since_emit_ = 0;
  bool first_window_filled_ = false;
};

/// Terminal operator: counts and optionally collects results.
class SinkOp final : public TupleOperator {
 public:
  explicit SinkOp(bool collect = false) : collect_(collect) {}
  Status Process(const Row& tuple) override {
    ++count_;
    if (collect_) rows_.push_back(tuple);
    return Status::OK();
  }
  int64_t count() const { return count_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  bool collect_;
  int64_t count_ = 0;
  std::vector<Row> rows_;
};

/// An operator chain plus the push entry point. Owns its operators.
class TuplePipeline {
 public:
  /// Appends `op` to the chain (first added = head).
  TupleOperator* Add(std::unique_ptr<TupleOperator> op);

  /// Pushes one tuple through the whole chain.
  Status Push(const Row& tuple);
  Status PushBatch(const std::vector<Row>& rows);
  Status Finish();

  int64_t tuples_pushed() const { return pushed_; }

 private:
  std::vector<std::unique_ptr<TupleOperator>> ops_;
  int64_t pushed_ = 0;
};

/// A registry of independent pipelines sharing the same input stream —
/// the tuple-at-a-time analogue of multiple continuous queries: every
/// incoming tuple is offered to every pipeline.
class TupleEngine {
 public:
  TuplePipeline* AddPipeline();
  Status Push(const Row& tuple);
  Status PushBatch(const std::vector<Row>& rows);
  Status Finish();
  size_t num_pipelines() const { return pipelines_.size(); }

 private:
  std::vector<std::unique_ptr<TuplePipeline>> pipelines_;
};

}  // namespace baseline
}  // namespace datacell

#endif  // DATACELL_BASELINE_TUPLE_ENGINE_H_
