#include "baseline/row_eval.h"

#include <cctype>
#include <cmath>

namespace datacell {

namespace {

bool IsCmp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

Result<Value> EvalBinary(const Expr& expr, const Row& row) {
  DC_ASSIGN_OR_RETURN(Value l, EvaluateExprOnRow(*expr.left(), row));
  DC_ASSIGN_OR_RETURN(Value r, EvaluateExprOnRow(*expr.right(), row));
  BinaryOp op = expr.binary_op();
  if (op == BinaryOp::kLike) {
    if (l.is_null() || r.is_null()) return Value::Bool(false);
    if (!l.is_string() || !r.is_string()) {
      return Status::TypeError("LIKE requires string operands");
    }
    return Value::Bool(LikeMatch(l.string_value(), r.string_value()));
  }
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    bool a = !l.is_null() && l.bool_value();
    bool b = !r.is_null() && r.bool_value();
    return Value::Bool(op == BinaryOp::kAnd ? (a && b) : (a || b));
  }
  if (l.is_null() || r.is_null()) {
    // Comparisons with null are false; arithmetic propagates null.
    return IsCmp(op) ? Value::Bool(false) : Value::Null();
  }
  if (IsCmp(op)) {
    bool lt;
    bool eq;
    if (l.is_string() && r.is_string()) {
      lt = l.string_value() < r.string_value();
      eq = l.string_value() == r.string_value();
    } else {
      double a = l.AsDouble();
      double b = r.AsDouble();
      lt = a < b;
      eq = a == b;
    }
    switch (op) {
      case BinaryOp::kEq:
        return Value::Bool(eq);
      case BinaryOp::kNe:
        return Value::Bool(!eq);
      case BinaryOp::kLt:
        return Value::Bool(lt);
      case BinaryOp::kLe:
        return Value::Bool(lt || eq);
      case BinaryOp::kGt:
        return Value::Bool(!lt && !eq);
      case BinaryOp::kGe:
        return Value::Bool(!lt);
      default:
        break;
    }
    return Status::Internal("bad comparison");
  }
  // Arithmetic.
  bool both_int = (l.is_int64() || l.is_timestamp()) &&
                  (r.is_int64() || r.is_timestamp());
  if (both_int && expr.type() == DataType::kInt64) {
    int64_t a = l.int64_value();
    int64_t b = r.int64_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int64(a + b);
      case BinaryOp::kSub:
        return Value::Int64(a - b);
      case BinaryOp::kMul:
        return Value::Int64(a * b);
      case BinaryOp::kDiv:
        return b == 0 ? Value::Null() : Value::Int64(a / b);
      case BinaryOp::kMod:
        return b == 0 ? Value::Null() : Value::Int64(a % b);
      default:
        break;
    }
    return Status::Internal("bad arithmetic");
  }
  double a = l.AsDouble();
  double b = r.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(a + b);
    case BinaryOp::kSub:
      return Value::Double(a - b);
    case BinaryOp::kMul:
      return Value::Double(a * b);
    case BinaryOp::kDiv:
      return b == 0.0 ? Value::Null() : Value::Double(a / b);
    case BinaryOp::kMod:
      return b == 0.0 ? Value::Null() : Value::Double(std::fmod(a, b));
    default:
      break;
  }
  return Status::Internal("bad arithmetic op");
}

}  // namespace

namespace {
Result<Value> EvalFunctionOnRow(const Expr& expr, const Row& row) {
  DC_ASSIGN_OR_RETURN(Value v, EvaluateExprOnRow(*expr.operand(), row));
  if (v.is_null()) return Value::Null();
  switch (expr.scalar_func()) {
    case ScalarFunc::kAbs:
      if (v.is_double()) return Value::Double(std::abs(v.double_value()));
      return Value::Int64(std::abs(v.int64_value()));
    case ScalarFunc::kFloor:
      return Value::Double(std::floor(v.AsDouble()));
    case ScalarFunc::kCeil:
      return Value::Double(std::ceil(v.AsDouble()));
    case ScalarFunc::kRound:
      return Value::Double(std::round(v.AsDouble()));
    case ScalarFunc::kSqrt:
      return v.AsDouble() < 0 ? Value::Null()
                              : Value::Double(std::sqrt(v.AsDouble()));
    case ScalarFunc::kLength:
      return Value::Int64(static_cast<int64_t>(v.string_value().size()));
    case ScalarFunc::kLower: {
      std::string s = v.string_value();
      for (char& c : s) c = static_cast<char>(std::tolower(
          static_cast<unsigned char>(c)));
      return Value::String(std::move(s));
    }
    case ScalarFunc::kUpper: {
      std::string s = v.string_value();
      for (char& c : s) c = static_cast<char>(std::toupper(
          static_cast<unsigned char>(c)));
      return Value::String(std::move(s));
    }
    case ScalarFunc::kToInt64:
      return Value::Int64(static_cast<int64_t>(v.AsDouble()));
  }
  return Status::Internal("bad scalar function");
}
}  // namespace

Result<Value> EvaluateExprOnRow(const Expr& expr, const Row& row) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef:
      if (expr.column_index() >= row.size()) {
        return Status::Internal("column index out of range");
      }
      return row[expr.column_index()];
    case ExprKind::kLiteral:
      return expr.literal();
    case ExprKind::kBinary:
      return EvalBinary(expr, row);
    case ExprKind::kFunction:
      return EvalFunctionOnRow(expr, row);
    case ExprKind::kCase: {
      for (size_t b = 0; b < expr.num_when_branches(); ++b) {
        DC_ASSIGN_OR_RETURN(Value c, EvaluateExprOnRow(*expr.when_cond(b), row));
        if (!c.is_null() && c.bool_value()) {
          DC_ASSIGN_OR_RETURN(Value v,
                              EvaluateExprOnRow(*expr.when_value(b), row));
          if (!v.is_null() && expr.type() == DataType::kDouble &&
              !v.is_double()) {
            return Value::Double(v.AsDouble());
          }
          return v;
        }
      }
      DC_ASSIGN_OR_RETURN(Value v, EvaluateExprOnRow(*expr.else_value(), row));
      if (!v.is_null() && expr.type() == DataType::kDouble && !v.is_double()) {
        return Value::Double(v.AsDouble());
      }
      return v;
    }
    case ExprKind::kUnary: {
      DC_ASSIGN_OR_RETURN(Value v, EvaluateExprOnRow(*expr.operand(), row));
      switch (expr.unary_op()) {
        case UnaryOp::kNot:
          return Value::Bool(!(!v.is_null() && v.bool_value()));
        case UnaryOp::kNeg:
          if (v.is_null()) return Value::Null();
          if (v.is_double()) return Value::Double(-v.double_value());
          return Value::Int64(-v.int64_value());
        case UnaryOp::kIsNull:
          return Value::Bool(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Bool(!v.is_null());
      }
      return Status::Internal("bad unary op");
    }
  }
  return Status::Internal("bad expr kind");
}

Result<bool> EvaluatePredicateOnRow(const Expr& expr, const Row& row) {
  DC_ASSIGN_OR_RETURN(Value v, EvaluateExprOnRow(expr, row));
  return !v.is_null() && v.bool_value();
}

}  // namespace datacell
