#ifndef DATACELL_BASELINE_ROW_EVAL_H_
#define DATACELL_BASELINE_ROW_EVAL_H_

#include "algebra/expression.h"
#include "storage/types.h"

namespace datacell {

/// Evaluates `expr` against a single tuple — the tuple-at-a-time execution
/// style of the comparator stream engines (§4). Interprets the expression
/// tree per tuple, which is exactly the per-tuple overhead the DataCell
/// design amortises through bulk basket processing.
Result<Value> EvaluateExprOnRow(const Expr& expr, const Row& row);

/// Convenience: evaluates a boolean expression on a tuple; nulls are false.
Result<bool> EvaluatePredicateOnRow(const Expr& expr, const Row& row);

}  // namespace datacell

#endif  // DATACELL_BASELINE_ROW_EVAL_H_
