#include "baseline/tuple_engine.h"

#include "common/check.h"

namespace datacell {
namespace baseline {

WindowAggregateOp::WindowAggregateOp(std::vector<size_t> group_columns,
                                     std::vector<size_t> agg_columns,
                                     std::vector<AggFunc> funcs,
                                     size_t window_size, size_t slide)
    : group_columns_(std::move(group_columns)),
      agg_columns_(std::move(agg_columns)),
      funcs_(std::move(funcs)),
      window_size_(window_size),
      slide_(slide) {
  DC_CHECK_EQ(agg_columns_.size(), funcs_.size());
  DC_CHECK_GT(window_size_, 0u);
  DC_CHECK_GT(slide_, 0u);
  DC_CHECK_LE(slide_, window_size_);
}

std::string WindowAggregateOp::GroupKey(const Row& tuple) const {
  std::string key;
  for (size_t c : group_columns_) {
    key += tuple[c].ToString();
    key.push_back('\x1f');
  }
  return key;
}

Status WindowAggregateOp::EmitWindow() {
  // Re-scan the window content per group — the naive per-window work a
  // tuple engine without summaries performs.
  std::map<std::string, std::pair<Row, std::vector<AggPartial>>> groups;
  for (const Row& t : window_) {
    std::string key = GroupKey(t);
    auto it = groups.find(key);
    if (it == groups.end()) {
      Row group_values;
      for (size_t c : group_columns_) group_values.push_back(t[c]);
      it = groups
               .emplace(std::move(key),
                        std::make_pair(std::move(group_values),
                                       std::vector<AggPartial>(funcs_.size())))
               .first;
    }
    for (size_t i = 0; i < funcs_.size(); ++i) {
      const Value& v = t[agg_columns_[i]];
      if (!v.is_null()) it->second.second[i].AddValue(v.AsDouble());
    }
  }
  for (const auto& [key, entry] : groups) {
    Row out = entry.first;
    for (size_t i = 0; i < funcs_.size(); ++i) {
      out.push_back(entry.second[i].Finalize(funcs_[i]));
    }
    DC_RETURN_NOT_OK(EmitRow(out));
  }
  return Status::OK();
}

Status WindowAggregateOp::Process(const Row& tuple) {
  window_.push_back(tuple);
  if (window_.size() > window_size_) window_.pop_front();
  ++seen_since_emit_;
  if (!first_window_filled_) {
    if (window_.size() == window_size_) {
      first_window_filled_ = true;
      seen_since_emit_ = 0;
      return EmitWindow();
    }
    return Status::OK();
  }
  if (seen_since_emit_ >= slide_) {
    seen_since_emit_ = 0;
    return EmitWindow();
  }
  return Status::OK();
}

TupleOperator* TuplePipeline::Add(std::unique_ptr<TupleOperator> op) {
  TupleOperator* raw = op.get();
  if (!ops_.empty()) ops_.back()->SetNext(raw);
  ops_.push_back(std::move(op));
  return raw;
}

Status TuplePipeline::Push(const Row& tuple) {
  ++pushed_;
  return ops_.empty() ? Status::OK() : ops_.front()->Process(tuple);
}

Status TuplePipeline::PushBatch(const std::vector<Row>& rows) {
  for (const Row& r : rows) {
    DC_RETURN_NOT_OK(Push(r));
  }
  return Status::OK();
}

Status TuplePipeline::Finish() {
  return ops_.empty() ? Status::OK() : ops_.front()->Finish();
}

TuplePipeline* TupleEngine::AddPipeline() {
  pipelines_.push_back(std::make_unique<TuplePipeline>());
  return pipelines_.back().get();
}

Status TupleEngine::Push(const Row& tuple) {
  for (auto& p : pipelines_) {
    DC_RETURN_NOT_OK(p->Push(tuple));
  }
  return Status::OK();
}

Status TupleEngine::PushBatch(const std::vector<Row>& rows) {
  for (const Row& r : rows) {
    DC_RETURN_NOT_OK(Push(r));
  }
  return Status::OK();
}

Status TupleEngine::Finish() {
  for (auto& p : pipelines_) {
    DC_RETURN_NOT_OK(p->Finish());
  }
  return Status::OK();
}

}  // namespace baseline
}  // namespace datacell
