#include "storage/catalog.h"

#include "common/string_util.h"

namespace datacell {

Result<TablePtr> Catalog::CreateRelation(const std::string& name,
                                         const Schema& schema,
                                         RelationKind kind) {
  auto table = std::make_shared<Table>(name, schema);
  DC_RETURN_NOT_OK(RegisterRelation(table, kind));
  return table;
}

Status Catalog::RegisterRelation(TablePtr table, RelationKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = ToLower(table->name());
  if (entries_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + table->name() +
                                 "' already exists");
  }
  entries_[key] = Entry{std::move(table), kind};
  return Status::OK();
}

Result<TablePtr> Catalog::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  return it->second.table;
}

Result<RelationKind> Catalog::KindOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  return it->second.kind;
}

bool Catalog::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(ToLower(name)) > 0;
}

Status Catalog::Drop(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  entries_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry.table->name());
  return out;
}

}  // namespace datacell
