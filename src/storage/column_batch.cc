#include "storage/column_batch.h"

#include "common/check.h"

namespace datacell {

void ColumnBatch::Reset(const Schema& schema) {
  schema_ = schema;
  columns_.clear();
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.emplace_back(f.type);
  }
}

void ColumnBatch::Clear() {
  for (Bat& col : columns_) col.Truncate(0);
}

void ColumnBatch::TruncateTo(size_t num_rows) {
  for (Bat& col : columns_) col.Truncate(num_rows);
}

void ColumnBatch::AppendRowUnchecked(const Row& row) {
  DC_DCHECK_EQ(row.size(), columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendValueUnchecked(row[c]);
  }
}

bool ColumnBatch::MatchesSchema(const Schema& other_schema) const {
  if (other_schema.num_fields() != columns_.size()) return false;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (other_schema.field(c).type != columns_[c].type()) return false;
  }
  return true;
}

size_t ColumnBatch::MemoryUsage() const {
  size_t bytes = 0;
  for (const Bat& col : columns_) bytes += col.MemoryUsage();
  return bytes;
}

}  // namespace datacell
