#include "storage/types.h"

#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/string_util.h"

namespace datacell {

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt64:
      return "int64";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

Result<DataType> DataTypeFromString(std::string_view name) {
  std::string n = ToLower(Trim(name));
  if (n == "int" || n == "integer" || n == "bigint" || n == "int64" ||
      n == "smallint" || n == "tinyint") {
    return DataType::kInt64;
  }
  if (n == "double" || n == "float" || n == "real" || n == "decimal" ||
      n == "numeric") {
    return DataType::kDouble;
  }
  if (n == "varchar" || n == "char" || n == "text" || n == "string" ||
      n == "clob") {
    return DataType::kString;
  }
  if (n == "timestamp" || n == "time" || n == "date") {
    return DataType::kTimestamp;
  }
  if (n == "bool" || n == "boolean") {
    return DataType::kBool;
  }
  return Status::ParseError("unknown type name: '" + std::string(name) + "'");
}

double Value::AsDouble() const {
  if (std::holds_alternative<int64_t>(v_)) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  if (std::holds_alternative<double>(v_)) return std::get<double>(v_);
  if (std::holds_alternative<bool>(v_)) return std::get<bool>(v_) ? 1.0 : 0.0;
  DC_CHECK(false);
  return 0.0;
}

DataType Value::type() const {
  DC_CHECK(!is_null());
  if (is_bool()) return DataType::kBool;
  if (is_timestamp()) return DataType::kTimestamp;
  if (std::holds_alternative<int64_t>(v_)) return DataType::kInt64;
  if (is_double()) return DataType::kDouble;
  return DataType::kString;
}

std::string Value::ToString() const {
  if (is_null()) return "";
  if (is_bool()) return bool_value() ? "true" : "false";
  if (std::holds_alternative<int64_t>(v_)) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(std::get<int64_t>(v_)));
    return buf;
  }
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", double_value());
    return buf;
  }
  return string_value();
}

Result<Value> Value::FromString(std::string_view text, DataType t) {
  if (t != DataType::kString && Trim(text).empty()) return Value::Null();
  switch (t) {
    case DataType::kBool: {
      std::string lower = ToLower(Trim(text));
      if (lower == "true" || lower == "1" || lower == "t") return Value::Bool(true);
      if (lower == "false" || lower == "0" || lower == "f") return Value::Bool(false);
      return Status::ParseError("invalid bool literal: '" + std::string(text) + "'");
    }
    case DataType::kInt64: {
      DC_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value::Int64(v);
    }
    case DataType::kTimestamp: {
      DC_ASSIGN_OR_RETURN(int64_t v, ParseInt64(text));
      return Value::TimestampVal(v);
    }
    case DataType::kDouble: {
      DC_ASSIGN_OR_RETURN(double v, ParseDouble(text));
      return Value::Double(v);
    }
    case DataType::kString:
      return Value::String(std::string(text));
  }
  return Status::Internal("unreachable type");
}

Status CheckValueType(const Value& v, DataType t) {
  if (v.is_null()) return Status::OK();
  switch (t) {
    case DataType::kInt64:
      if (v.is_int64()) return Status::OK();
      break;
    case DataType::kTimestamp:
      if (v.is_timestamp() || v.is_int64()) return Status::OK();
      break;
    case DataType::kDouble:
      if (v.is_double() || v.is_int64()) return Status::OK();
      break;
    case DataType::kBool:
      if (v.is_bool()) return Status::OK();
      break;
    case DataType::kString:
      if (v.is_string()) return Status::OK();
      break;
  }
  return Status::TypeError(std::string("value of type ") +
                           DataTypeToString(v.type()) +
                           " not storable in column of type " +
                           DataTypeToString(t));
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_string() != b.is_string()) return false;
  if (a.is_string()) return a.string_value() == b.string_value();
  if (a.is_bool() && b.is_bool()) return a.bool_value() == b.bool_value();
  return a.AsDouble() == b.AsDouble();
}

bool operator<(const Value& a, const Value& b) {
  if (a.is_null()) return !b.is_null();  // null sorts first
  if (b.is_null()) return false;
  if (a.is_string() && b.is_string()) return a.string_value() < b.string_value();
  if (a.is_string() != b.is_string()) {
    // Heterogeneous comparison only arises in sorting mixed test data; order
    // numerics before strings deterministically.
    return !a.is_string();
  }
  return a.AsDouble() < b.AsDouble();
}

}  // namespace datacell
