#ifndef DATACELL_STORAGE_TYPES_H_
#define DATACELL_STORAGE_TYPES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"

namespace datacell {

/// Dense object identifier: the virtual head of a BAT. Oids identify the
/// relational tuple an attribute value belongs to; all attribute values of a
/// single tuple carry the same oid across a table's BATs.
using Oid = uint64_t;

/// Column types supported by the kernel. Timestamps are microseconds since
/// epoch, stored as int64 (see common/clock.h).
enum class DataType : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kTimestamp = 4,
};

/// Stable lower-case name, e.g. "int64".
const char* DataTypeToString(DataType t);

/// Parses a SQL type name ("int"/"bigint"/"double"/"float"/"varchar"/
/// "text"/"string"/"timestamp"/"bool"/"boolean"); case-insensitive.
Result<DataType> DataTypeFromString(std::string_view name);

/// Whether values of `t` are stored as int64 internally.
inline bool IsIntegerBacked(DataType t) {
  return t == DataType::kInt64 || t == DataType::kTimestamp;
}

inline bool IsNumeric(DataType t) {
  return t == DataType::kInt64 || t == DataType::kDouble ||
         t == DataType::kTimestamp;
}

/// A single attribute value, used at the system periphery (parsing, result
/// delivery, tests). The bulk operators never work on `Value`s; they work on
/// typed column vectors.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Repr(b)); }
  static Value Int64(int64_t i) { return Value(Repr(i)); }
  static Value Double(double d) { return Value(Repr(d)); }
  static Value String(std::string s) { return Value(Repr(std::move(s))); }
  static Value TimestampVal(int64_t us) {
    Value v{Repr{us}};
    v.is_timestamp_ = true;
    return v;
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int64() const {
    return std::holds_alternative<int64_t>(v_) && !is_timestamp_;
  }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_timestamp() const {
    return std::holds_alternative<int64_t>(v_) && is_timestamp_;
  }

  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int64_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }

  /// Numeric coercion used by the expression evaluator: int64/timestamp and
  /// double all read as double; anything else aborts.
  double AsDouble() const;

  /// The DataType this value carries; null has no type and aborts.
  DataType type() const;

  /// Renders for the textual tuple interchange format (CSV): null -> "",
  /// bool -> "true"/"false", numbers via printf, strings verbatim.
  std::string ToString() const;

  /// Parses `text` as a value of type `t`. Empty text yields null.
  static Result<Value> FromString(std::string_view text, DataType t);

  /// SQL comparison. Null compares equal to null and less than everything
  /// else (total order for sorting); cross numeric types compare as double.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Repr v) : v_(std::move(v)) {}

  Repr v_;
  bool is_timestamp_ = false;
};

/// A flat tuple at the periphery (receptor input, emitter output).
using Row = std::vector<Value>;

/// OK when `v` (non-null) can be stored in a column of type `t`
/// (int64 widens to double; int64 accepted as timestamp).
Status CheckValueType(const Value& v, DataType t);

/// Boolean form of CheckValueType for hot ingest paths: no Status is
/// constructed on the (overwhelmingly common) success case. Callers build
/// the detailed error via CheckValueType only after this returns false.
inline bool ValueMatchesType(const Value& v, DataType t) {
  if (v.is_null()) return true;
  switch (t) {
    case DataType::kInt64:
      return v.is_int64();
    case DataType::kTimestamp:
      return v.is_timestamp() || v.is_int64();
    case DataType::kDouble:
      return v.is_double() || v.is_int64();
    case DataType::kBool:
      return v.is_bool();
    case DataType::kString:
      return v.is_string();
  }
  return false;
}

}  // namespace datacell

#endif  // DATACELL_STORAGE_TYPES_H_
