#include "storage/schema.h"

#include "common/string_util.h"

namespace datacell {

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

int64_t Schema::EstimatedRowBytes(int64_t string_bytes) const {
  int64_t bytes = 0;
  for (const Field& f : fields_) {
    switch (f.type) {
      case DataType::kBool:
        bytes += 1;
        break;
      case DataType::kInt64:
      case DataType::kDouble:
      case DataType::kTimestamp:
        bytes += 8;
        break;
      case DataType::kString:
        bytes += string_bytes;
        break;
    }
  }
  return bytes;
}

}  // namespace datacell
