#include "storage/schema.h"

#include "common/string_util.h"

namespace datacell {

std::optional<size_t> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (EqualsIgnoreCase(fields_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += DataTypeToString(fields_[i].type);
  }
  return out;
}

}  // namespace datacell
