#ifndef DATACELL_STORAGE_COLUMN_BATCH_H_
#define DATACELL_STORAGE_COLUMN_BATCH_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/bat.h"
#include "storage/schema.h"

namespace datacell {

/// A typed, columnar staging batch: the SoA counterpart of `std::vector<Row>`
/// on the ingest path. Adapters (CSV receptors, generators, replayers) parse
/// stream tuples *directly into* the typed column buffers — no `Value`
/// boxing, no per-field heap traffic — and hand the whole batch to
/// `Basket::AppendColumns(ColumnBatch&&)`, which swaps the buffers in.
///
/// A moved-from batch is empty but keeps whatever buffer capacity the
/// receiving basket handed back in the swap, so a long-lived batch owned by a
/// receptor reaches a steady state where `Clear()` + refill touches the
/// allocator not at all (fixed-width columns; string columns still own their
/// character storage).
///
/// Columns follow the *user* schema of a stream — the implicit `ts` column is
/// stamped on by the basket, not carried here.
///
/// Not thread-safe; each adapter owns its batch.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(const Schema& schema) { Reset(schema); }

  ColumnBatch(const ColumnBatch&) = delete;
  ColumnBatch& operator=(const ColumnBatch&) = delete;
  ColumnBatch(ColumnBatch&&) = default;
  ColumnBatch& operator=(ColumnBatch&&) = default;

  /// Re-initialises for `schema`: drops all columns and builds fresh empty
  /// ones (capacity is not retained across a Reset — use Clear for that).
  void Reset(const Schema& schema);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  bool empty() const { return num_rows() == 0; }

  Bat& column(size_t i) { return columns_[i]; }
  const Bat& column(size_t i) const { return columns_[i]; }

  /// Drops all rows, keeping buffer capacity (vector::clear semantics).
  void Clear();
  /// Rolls every column back to `num_rows` rows — the per-row atomicity
  /// primitive for parsers that append column-by-column and hit an error
  /// mid-tuple. Capacity is kept.
  void TruncateTo(size_t num_rows);

  /// Row-oriented compatibility append (used by the AppendBatch shim and the
  /// default generator transposition). The row must already be validated
  /// against the schema.
  void AppendRowUnchecked(const Row& row);

  /// True when every column of `other_schema` matches this batch's column
  /// types positionally (names are not compared; baskets bind by position).
  bool MatchesSchema(const Schema& other_schema) const;

  size_t MemoryUsage() const;

 private:
  Schema schema_;
  std::vector<Bat> columns_;
};

}  // namespace datacell

#endif  // DATACELL_STORAGE_COLUMN_BATCH_H_
