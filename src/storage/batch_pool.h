#ifndef DATACELL_STORAGE_BATCH_POOL_H_
#define DATACELL_STORAGE_BATCH_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/lock_order.h"
#include "storage/table.h"

namespace datacell {

/// Free-list recycler for BAT data buffers. Drained and emitted batches give
/// their buffers back here instead of to the allocator; the next drain
/// acquires a table whose columns already carry capacity, so the steady-state
/// pipeline stops allocating even when producer and consumer batch sizes
/// differ (the buffer ping-pong of Bat::MoveContentInto covers the balanced
/// case on its own).
///
/// Buffers are pooled per backing class — int64 (also timestamps), double,
/// u8 (bools and validity vectors share it), string — each list bounded by
/// `max_buffers_per_class`; overflow buffers are dropped to the allocator and
/// counted. Hit/miss/recycled/dropped counters are pulled into the
/// MetricsRegistry by the engine's metrics snapshot.
///
/// Thread-safety: one mutex; the pool is a *leaf* lock (class "batch_pool",
/// ordered after "basket" — DrainAll acquires a pooled table while holding
/// the basket monitor; the pool never calls back out).
class BatchPool {
 public:
  explicit BatchPool(size_t max_buffers_per_class = 256)
      : max_per_class_(max_buffers_per_class) {}

  BatchPool(const BatchPool&) = delete;
  BatchPool& operator=(const BatchPool&) = delete;

  /// A fresh table shell for `schema` whose columns are primed with pooled
  /// buffer capacity where available. The shell itself (Table + Bat control
  /// blocks) is heap-allocated; only the data buffers are recycled.
  TablePtr AcquireTable(const std::string& name, const Schema& schema);

  /// Primes `bat`'s (empty) backing buffer with pooled capacity, if any.
  void PrimeBat(Bat& bat);

  /// Returns every column buffer of `table` to the free lists; the table is
  /// left empty (hseqbase advanced past the recycled content, like Clear()).
  void Recycle(Table& table);
  /// Returns `bat`'s buffers to the free lists; `bat` is left empty.
  void Recycle(Bat& bat);

  // --- counters (engine metrics snapshot) -------------------------------
  int64_t hits() const;      ///< acquisitions served from a free list
  int64_t misses() const;    ///< acquisitions that fell through to malloc
  int64_t recycled() const;  ///< buffers accepted back into the pool
  int64_t dropped() const;   ///< buffers refused (list full) -> allocator
  size_t free_buffers() const;  ///< buffers currently pooled
  size_t free_bytes() const;    ///< capacity bytes currently pooled

 private:
  template <typename T>
  struct FreeList {
    std::vector<std::vector<T>> buffers;
    size_t bytes = 0;
  };

  // All callers hold mu_.
  template <typename T>
  bool PopInto(FreeList<T>& list, std::vector<T>& dst);
  template <typename T>
  void Push(FreeList<T>& list, std::vector<T>&& buf);
  void PrimeBatLocked(Bat& bat);
  void RecycleLocked(Bat& bat);

  mutable std::mutex mu_;
  size_t max_per_class_;
  FreeList<int64_t> free_int64_;
  FreeList<double> free_double_;
  FreeList<uint8_t> free_u8_;
  FreeList<std::string> free_string_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t recycled_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace datacell

#endif  // DATACELL_STORAGE_BATCH_POOL_H_
