#ifndef DATACELL_STORAGE_SCHEMA_H_
#define DATACELL_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/types.h"

namespace datacell {

/// One attribute of a relation: a name and a type.
struct Field {
  std::string name;
  DataType type;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// Ordered attribute list of a relation. Field names are stored as given;
/// lookups are case-insensitive, matching SQL identifier semantics.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Position of the field named `name`, or nullopt.
  std::optional<size_t> IndexOf(std::string_view name) const;

  /// "name type, name type, ..." rendering.
  std::string ToString() const;

  /// Estimated in-memory bytes of one row of this schema: fixed-width types
  /// by their value size (bool 1, int64/double/timestamp 8), strings by the
  /// caller-supplied per-value estimate (Values carry std::string payloads
  /// whose true length is data-dependent). The static state-bound analyzer
  /// and the runtime state-accounting hooks share this so static bounds and
  /// measured occupancy are expressed in the same unit.
  int64_t EstimatedRowBytes(int64_t string_bytes) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace datacell

#endif  // DATACELL_STORAGE_SCHEMA_H_
