#include "storage/batch_pool.h"

#include "common/check.h"

namespace datacell {

template <typename T>
bool BatchPool::PopInto(FreeList<T>& list, std::vector<T>& dst) {
  if (list.buffers.empty()) return false;
  list.bytes -= list.buffers.back().capacity() * sizeof(T);
  dst = std::move(list.buffers.back());
  list.buffers.pop_back();
  return true;
}

template <typename T>
void BatchPool::Push(FreeList<T>& list, std::vector<T>&& buf) {
  if (buf.capacity() == 0) return;  // nothing worth keeping
  if (list.buffers.size() >= max_per_class_) {
    ++dropped_;
    return;  // buf's destructor returns it to the allocator
  }
  buf.clear();
  list.bytes += buf.capacity() * sizeof(T);
  list.buffers.push_back(std::move(buf));
  ++recycled_;
}

void BatchPool::PrimeBatLocked(Bat& bat) {
  DC_DCHECK(bat.empty());
  bool hit = false;
  switch (bat.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      if (bat.int64_data_.capacity() > 0) return;  // already primed
      hit = PopInto(free_int64_, bat.int64_data_);
      break;
    case DataType::kDouble:
      if (bat.double_data_.capacity() > 0) return;
      hit = PopInto(free_double_, bat.double_data_);
      break;
    case DataType::kBool:
      if (bat.bool_data_.capacity() > 0) return;
      hit = PopInto(free_u8_, bat.bool_data_);
      break;
    case DataType::kString:
      if (bat.string_data_.capacity() > 0) return;
      hit = PopInto(free_string_, bat.string_data_);
      break;
  }
  ++(hit ? hits_ : misses_);
}

void BatchPool::RecycleLocked(Bat& bat) {
  // Leave the BAT observably identical to one that was Clear()ed.
  bat.hseqbase_ += bat.size();
  switch (bat.type()) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      Push(free_int64_, std::move(bat.int64_data_));
      bat.int64_data_ = {};
      break;
    case DataType::kDouble:
      Push(free_double_, std::move(bat.double_data_));
      bat.double_data_ = {};
      break;
    case DataType::kBool:
      Push(free_u8_, std::move(bat.bool_data_));
      bat.bool_data_ = {};
      break;
    case DataType::kString:
      Push(free_string_, std::move(bat.string_data_));
      bat.string_data_ = {};
      break;
  }
  if (bat.validity_.capacity() > 0) {
    Push(free_u8_, std::move(bat.validity_));
  }
  bat.validity_ = {};
}

TablePtr BatchPool::AcquireTable(const std::string& name,
                                 const Schema& schema) {
  auto out = std::make_shared<Table>(name, schema);
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  for (size_t c = 0; c < out->num_columns(); ++c) {
    PrimeBatLocked(*out->column(c));
  }
  return out;
}

void BatchPool::PrimeBat(Bat& bat) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  PrimeBatLocked(bat);
}

void BatchPool::Recycle(Table& table) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  for (size_t c = 0; c < table.num_columns(); ++c) {
    RecycleLocked(*table.column(c));
  }
}

void BatchPool::Recycle(Bat& bat) {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  RecycleLocked(bat);
}

int64_t BatchPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  return hits_;
}

int64_t BatchPool::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  return misses_;
}

int64_t BatchPool::recycled() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  return recycled_;
}

int64_t BatchPool::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  return dropped_;
}

size_t BatchPool::free_buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  return free_int64_.buffers.size() + free_double_.buffers.size() +
         free_u8_.buffers.size() + free_string_.buffers.size();
}

size_t BatchPool::free_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  DC_LOCK_ORDER(&mu_, "batch_pool", "pool");
  return free_int64_.bytes + free_double_.bytes + free_u8_.bytes +
         free_string_.bytes;
}

}  // namespace datacell
