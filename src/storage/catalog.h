#ifndef DATACELL_STORAGE_CATALOG_H_
#define DATACELL_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace datacell {

/// Kind of relation registered in the catalog. Baskets are the DataCell
/// extension: temporary stream tables with consume-on-read retention.
enum class RelationKind { kTable, kBasket };

/// Name → relation registry shared by the SQL binder and the DataCell
/// engine. Thread-safe: registration happens from the client thread while
/// the scheduler runs.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new empty relation; fails on duplicate names
  /// (case-insensitive).
  Result<TablePtr> CreateRelation(const std::string& name, const Schema& schema,
                                  RelationKind kind);
  /// Registers an existing table object under its own name.
  Status RegisterRelation(TablePtr table, RelationKind kind);

  Result<TablePtr> Get(const std::string& name) const;
  Result<RelationKind> KindOf(const std::string& name) const;
  bool Contains(const std::string& name) const;
  Status Drop(const std::string& name);

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    TablePtr table;
    RelationKind kind;
  };
  mutable std::mutex mu_;
  // Keyed by lower-cased name; Entry.table->name() keeps the original.
  std::map<std::string, Entry> entries_;
};

}  // namespace datacell

#endif  // DATACELL_STORAGE_CATALOG_H_
