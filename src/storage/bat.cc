#include "storage/bat.h"

#include <algorithm>

#include "common/check.h"

namespace datacell {

Bat::Bat(DataType type, Oid hseqbase) : type_(type), hseqbase_(hseqbase) {}

size_t Bat::size() const {
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      return int64_data_.size();
    case DataType::kDouble:
      return double_data_.size();
    case DataType::kBool:
      return bool_data_.size();
    case DataType::kString:
      return string_data_.size();
  }
  return 0;
}

void Bat::EnsureValidity() {
  if (validity_.empty()) validity_.assign(size(), 1);
}

void Bat::AppendString(std::string v) {
  DC_CHECK(type_ == DataType::kString);
  string_data_.push_back(std::move(v));
  if (!validity_.empty()) validity_.push_back(1);
}

void Bat::AppendNull() {
  EnsureValidity();
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      int64_data_.push_back(0);
      break;
    case DataType::kDouble:
      double_data_.push_back(0.0);
      break;
    case DataType::kBool:
      bool_data_.push_back(0);
      break;
    case DataType::kString:
      string_data_.emplace_back();
      break;
  }
  validity_.push_back(0);
}

Status Bat::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return Status::OK();
  }
  switch (type_) {
    case DataType::kInt64:
      if (!v.is_int64()) {
        return Status::TypeError("expected int64 value");
      }
      AppendInt64(v.int64_value());
      return Status::OK();
    case DataType::kTimestamp:
      if (!v.is_timestamp() && !v.is_int64()) {
        return Status::TypeError("expected timestamp value");
      }
      AppendInt64(v.int64_value());
      return Status::OK();
    case DataType::kDouble:
      if (v.is_double()) {
        AppendDouble(v.double_value());
      } else if (v.is_int64()) {
        AppendDouble(static_cast<double>(v.int64_value()));
      } else {
        return Status::TypeError("expected double value");
      }
      return Status::OK();
    case DataType::kBool:
      if (!v.is_bool()) return Status::TypeError("expected bool value");
      AppendBool(v.bool_value());
      return Status::OK();
    case DataType::kString:
      if (!v.is_string()) return Status::TypeError("expected string value");
      AppendString(v.string_value());
      return Status::OK();
  }
  return Status::Internal("unreachable type");
}

void Bat::AppendValueUnchecked(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      AppendInt64(v.int64_value());
      break;
    case DataType::kDouble:
      // int64 widens to double, mirroring AppendValue's coercion.
      AppendDouble(v.is_double() ? v.double_value()
                                 : static_cast<double>(v.int64_value()));
      break;
    case DataType::kBool:
      AppendBool(v.bool_value());
      break;
    case DataType::kString:
      AppendString(v.string_value());
      break;
  }
}

void Bat::AppendConstantInt64(int64_t v, size_t n) {
  DC_CHECK(IsIntegerBacked(type_));
  int64_data_.resize(int64_data_.size() + n, v);
  if (!validity_.empty()) validity_.resize(validity_.size() + n, 1);
}

int64_t* Bat::AppendUninitializedInt64(size_t n) {
  DC_CHECK(IsIntegerBacked(type_));
  DC_CHECK(validity_.empty());
  size_t old = int64_data_.size();
  int64_data_.resize(old + n);
  return int64_data_.data() + old;
}

double* Bat::AppendUninitializedDouble(size_t n) {
  DC_CHECK(type_ == DataType::kDouble);
  DC_CHECK(validity_.empty());
  size_t old = double_data_.size();
  double_data_.resize(old + n);
  return double_data_.data() + old;
}

void Bat::AppendBat(const Bat& other) {
  DC_CHECK(type_ == other.type_);
  // Track validity when either side already does; note an empty destination
  // has an empty validity vector even after EnsureValidity, so the decision
  // must not depend on it becoming non-empty.
  if (!validity_.empty() || other.has_nulls()) {
    EnsureValidity();
    if (other.has_nulls()) {
      validity_.insert(validity_.end(), other.validity_.begin(),
                       other.validity_.end());
    } else {
      validity_.insert(validity_.end(), other.size(), 1);
    }
  }
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      int64_data_.insert(int64_data_.end(), other.int64_data_.begin(),
                         other.int64_data_.end());
      break;
    case DataType::kDouble:
      double_data_.insert(double_data_.end(), other.double_data_.begin(),
                          other.double_data_.end());
      break;
    case DataType::kBool:
      bool_data_.insert(bool_data_.end(), other.bool_data_.begin(),
                        other.bool_data_.end());
      break;
    case DataType::kString:
      string_data_.insert(string_data_.end(), other.string_data_.begin(),
                          other.string_data_.end());
      break;
  }
}

void Bat::AppendPositions(const Bat& other, const std::vector<size_t>& positions) {
  DC_CHECK(type_ == other.type_);
  // Type dispatch and validity tracking are hoisted out of the per-position
  // loop: each gather is a tight resize-and-index loop over one vector.
  bool track = !validity_.empty() || other.has_nulls();
  if (track) {
    EnsureValidity();
    size_t base = validity_.size();
    validity_.resize(base + positions.size());
    for (size_t k = 0; k < positions.size(); ++k) {
      DC_DCHECK_LT(positions[k], other.size());
      validity_[base + k] =
          static_cast<uint8_t>(other.IsNull(positions[k]) ? 0 : 1);
    }
  }
  auto gather = [&](auto& dst, const auto& src) {
    size_t base = dst.size();
    dst.resize(base + positions.size());
    for (size_t k = 0; k < positions.size(); ++k) {
      DC_DCHECK_LT(positions[k], src.size());
      dst[base + k] = src[positions[k]];
    }
  };
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      gather(int64_data_, other.int64_data_);
      break;
    case DataType::kDouble:
      gather(double_data_, other.double_data_);
      break;
    case DataType::kBool:
      gather(bool_data_, other.bool_data_);
      break;
    case DataType::kString:
      gather(string_data_, other.string_data_);
      break;
  }
}

bool Bat::IsNull(size_t pos) const {
  return !validity_.empty() && validity_[pos] == 0;
}

Value Bat::GetValue(size_t pos) const {
  DC_CHECK_LT(pos, size());
  if (IsNull(pos)) return Value::Null();
  switch (type_) {
    case DataType::kInt64:
      return Value::Int64(int64_data_[pos]);
    case DataType::kTimestamp:
      return Value::TimestampVal(int64_data_[pos]);
    case DataType::kDouble:
      return Value::Double(double_data_[pos]);
    case DataType::kBool:
      return Value::Bool(bool_data_[pos] != 0);
    case DataType::kString:
      return Value::String(string_data_[pos]);
  }
  return Value::Null();
}

std::unique_ptr<Bat> Bat::Slice(size_t offset, size_t length) const {
  DC_CHECK_LE(offset, size());
  length = std::min(length, size() - offset);
  auto out = std::make_unique<Bat>(type_, hseqbase_ + offset);
  auto copy_range = [&](auto& dst, const auto& src) {
    dst.assign(src.begin() + static_cast<ptrdiff_t>(offset),
               src.begin() + static_cast<ptrdiff_t>(offset + length));
  };
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      copy_range(out->int64_data_, int64_data_);
      break;
    case DataType::kDouble:
      copy_range(out->double_data_, double_data_);
      break;
    case DataType::kBool:
      copy_range(out->bool_data_, bool_data_);
      break;
    case DataType::kString:
      copy_range(out->string_data_, string_data_);
      break;
  }
  if (!validity_.empty()) copy_range(out->validity_, validity_);
  return out;
}

std::unique_ptr<Bat> Bat::Take(const std::vector<size_t>& positions,
                               Oid new_hseqbase) const {
  auto out = std::make_unique<Bat>(type_, new_hseqbase);
  out->AppendPositions(*this, positions);
  return out;
}

std::unique_ptr<Bat> Bat::Clone() const { return Slice(0, size()); }

void Bat::MoveContentInto(Bat& dst) {
  DC_CHECK(type_ == dst.type_);
  DC_CHECK(dst.empty());
  dst.hseqbase_ = hseqbase_;
  hseqbase_ += size();
  // Swapping (rather than moving) hands dst's old empty-but-capacitied
  // buffers back to this BAT, so repeated fill/drain cycles reuse the same
  // two allocations instead of touching the allocator.
  std::swap(int64_data_, dst.int64_data_);
  std::swap(double_data_, dst.double_data_);
  std::swap(bool_data_, dst.bool_data_);
  std::swap(string_data_, dst.string_data_);
  std::swap(validity_, dst.validity_);
}

void Bat::TakeContentFrom(Bat& src) {
  DC_CHECK(type_ == src.type_);
  if (empty()) {
    Oid keep = hseqbase_;
    src.MoveContentInto(*this);
    hseqbase_ = keep;
    return;
  }
  AppendBat(src);
  src.Clear();
}

void Bat::Truncate(size_t n) {
  DC_CHECK_LE(n, size());
  int64_data_.resize(std::min(int64_data_.size(), n));
  double_data_.resize(std::min(double_data_.size(), n));
  bool_data_.resize(std::min(bool_data_.size(), n));
  string_data_.resize(std::min(string_data_.size(), n));
  if (!validity_.empty()) validity_.resize(n);
}

void Bat::RemovePrefix(size_t n) {
  n = std::min(n, size());
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      RemovePrefixImpl(int64_data_, n);
      break;
    case DataType::kDouble:
      RemovePrefixImpl(double_data_, n);
      break;
    case DataType::kBool:
      RemovePrefixImpl(bool_data_, n);
      break;
    case DataType::kString:
      RemovePrefixImpl(string_data_, n);
      break;
  }
  if (!validity_.empty()) RemovePrefixImpl(validity_, n);
  hseqbase_ += n;
}

void Bat::RemovePositions(const std::vector<size_t>& sorted_positions) {
  if (sorted_positions.empty()) return;
  auto compact = [&](auto& vec) {
    size_t write = 0;
    size_t next_del = 0;
    for (size_t read = 0; read < vec.size(); ++read) {
      if (next_del < sorted_positions.size() &&
          sorted_positions[next_del] == read) {
        ++next_del;
        continue;
      }
      if (write != read) vec[write] = std::move(vec[read]);
      ++write;
    }
    vec.resize(write);
  };
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      compact(int64_data_);
      break;
    case DataType::kDouble:
      compact(double_data_);
      break;
    case DataType::kBool:
      compact(bool_data_);
      break;
    case DataType::kString:
      compact(string_data_);
      break;
  }
  if (!validity_.empty()) compact(validity_);
}

void Bat::Clear() {
  hseqbase_ += size();
  int64_data_.clear();
  double_data_.clear();
  bool_data_.clear();
  string_data_.clear();
  validity_.clear();
}

size_t Bat::MemoryUsage() const {
  size_t bytes = validity_.capacity();
  switch (type_) {
    case DataType::kInt64:
    case DataType::kTimestamp:
      bytes += int64_data_.capacity() * sizeof(int64_t);
      break;
    case DataType::kDouble:
      bytes += double_data_.capacity() * sizeof(double);
      break;
    case DataType::kBool:
      bytes += bool_data_.capacity();
      break;
    case DataType::kString:
      for (const auto& s : string_data_) bytes += sizeof(std::string) + s.capacity();
      break;
  }
  return bytes;
}

std::string Bat::ToString() const {
  std::string out = "[";
  size_t n = std::min<size_t>(size(), 32);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += IsNull(i) ? "null" : GetValue(i).ToString();
  }
  if (size() > n) out += ", ...";
  out += "]";
  return out;
}

BatPtr MakeInt64Bat(const std::vector<int64_t>& values, Oid hseqbase) {
  auto b = std::make_shared<Bat>(DataType::kInt64, hseqbase);
  for (int64_t v : values) b->AppendInt64(v);
  return b;
}

BatPtr MakeDoubleBat(const std::vector<double>& values, Oid hseqbase) {
  auto b = std::make_shared<Bat>(DataType::kDouble, hseqbase);
  for (double v : values) b->AppendDouble(v);
  return b;
}

BatPtr MakeStringBat(const std::vector<std::string>& values, Oid hseqbase) {
  auto b = std::make_shared<Bat>(DataType::kString, hseqbase);
  for (const auto& v : values) b->AppendString(v);
  return b;
}

BatPtr MakeBoolBat(const std::vector<bool>& values, Oid hseqbase) {
  auto b = std::make_shared<Bat>(DataType::kBool, hseqbase);
  for (bool v : values) b->AppendBool(v);
  return b;
}

}  // namespace datacell
