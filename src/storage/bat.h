#ifndef DATACELL_STORAGE_BAT_H_
#define DATACELL_STORAGE_BAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "storage/types.h"

namespace datacell {

class BatchPool;

/// Binary Association Table: MonetDB's column representation.
///
/// A BAT is logically a set of (head, tail) pairs. The head is a *virtual*
/// dense oid sequence starting at `hseqbase()` — it is never materialised.
/// The tail is a typed value vector. For a relation of k attributes there are
/// k BATs whose positions are aligned: position i across all of them forms
/// relational tuple `hseqbase + i`.
///
/// Nulls are tracked by a lazily-allocated validity vector (1 = valid); BATs
/// holding no nulls pay nothing for it.
///
/// BATs are not thread-safe; callers (baskets) serialise access.
class Bat {
 public:
  explicit Bat(DataType type, Oid hseqbase = 0);

  Bat(const Bat&) = delete;
  Bat& operator=(const Bat&) = delete;
  // Movable so ColumnBatch can hold BATs by value; a moved-from BAT is empty.
  Bat(Bat&&) = default;
  Bat& operator=(Bat&&) = default;

  DataType type() const { return type_; }
  size_t size() const;
  bool empty() const { return size() == 0; }
  /// Oid of the value at position 0; position i has oid `hseqbase() + i`.
  Oid hseqbase() const { return hseqbase_; }

  // --- Appends (type must match; checked) -----------------------------
  // The scalar numeric appends are inline: adapters refill persistent
  // ColumnBatches one value at a time, so a call per value would dominate
  // the zero-copy ingest path.
  void AppendInt64(int64_t v) {
    DC_CHECK(IsIntegerBacked(type_));
    int64_data_.push_back(v);
    if (!validity_.empty()) validity_.push_back(1);
  }
  void AppendDouble(double v) {
    DC_CHECK(type_ == DataType::kDouble);
    double_data_.push_back(v);
    if (!validity_.empty()) validity_.push_back(1);
  }
  void AppendBool(bool v) {
    DC_CHECK(type_ == DataType::kBool);
    bool_data_.push_back(v ? 1 : 0);
    if (!validity_.empty()) validity_.push_back(1);
  }
  void AppendString(std::string v);
  void AppendNull();
  /// Type-checked append of a peripheral `Value` (null allowed).
  Status AppendValue(const Value& v);
  /// Append of a `Value` the caller has already validated against this BAT's
  /// type (CheckValueType passed). Skips the per-value Status machinery of
  /// AppendValue — the hot ingest path validates once per batch, not per
  /// field. Nulls allowed.
  void AppendValueUnchecked(const Value& v);
  /// Appends all of `other` (same type required).
  void AppendBat(const Bat& other);
  /// Appends positions `positions` of `other`. Positions must be in range
  /// (debug-checked; they come from the select kernels).
  void AppendPositions(const Bat& other, const std::vector<size_t>& positions);
  /// Appends `n` copies of `v` (integer-backed BATs only) — the bulk
  /// timestamp-stamping path; a constant fill the compiler vectorises.
  void AppendConstantInt64(int64_t v, size_t n);
  /// Appends `n` uninitialised values and returns the write pointer for
  /// them. The fused value-compress kernels write qualifying values straight
  /// into the column, then the caller Truncate()s down to the count the
  /// kernel returned. Only for BATs holding no nulls (checked).
  int64_t* AppendUninitializedInt64(size_t n);
  double* AppendUninitializedDouble(size_t n);

  // --- Element access --------------------------------------------------
  bool IsNull(size_t pos) const;
  bool has_nulls() const { return !validity_.empty(); }
  /// Raw validity mask (1 = valid), or nullptr when the BAT never held a
  /// null — the form the raw-buffer kernels consume.
  const uint8_t* validity_data() const {
    return validity_.empty() ? nullptr : validity_.data();
  }
  Value GetValue(size_t pos) const;
  int64_t Int64At(size_t pos) const { return int64_data_[pos]; }
  double DoubleAt(size_t pos) const { return double_data_[pos]; }
  bool BoolAt(size_t pos) const { return bool_data_[pos] != 0; }
  const std::string& StringAt(size_t pos) const { return string_data_[pos]; }

  // --- Bulk typed access (hot paths) ------------------------------------
  const std::vector<int64_t>& int64_data() const { return int64_data_; }
  const std::vector<double>& double_data() const { return double_data_; }
  const std::vector<uint8_t>& bool_data() const { return bool_data_; }
  const std::vector<std::string>& string_data() const { return string_data_; }

  // --- Bulk restructuring ------------------------------------------------
  /// New BAT holding positions [offset, offset+length); hseqbase is carried
  /// over so oids stay meaningful.
  std::unique_ptr<Bat> Slice(size_t offset, size_t length) const;
  /// New BAT holding the given positions, with a fresh dense head starting
  /// at `new_hseqbase` (projection re-numbers tuples, as in MonetDB's
  /// order-preserving projection).
  std::unique_ptr<Bat> Take(const std::vector<size_t>& positions,
                            Oid new_hseqbase = 0) const;
  std::unique_ptr<Bat> Clone() const;

  // --- Zero-copy buffer exchange (the stealing-drain primitives) ---------
  /// Moves this BAT's content into `dst` (same type; `dst` must be empty):
  /// the underlying buffers are *swapped*, so `dst` receives the data without
  /// copying and this BAT is left empty but holding `dst`'s old buffer
  /// capacity (buffer ping-pong — in steady state the same allocations cycle
  /// between producer and consumer). `dst`'s hseqbase becomes this BAT's old
  /// hseqbase; this BAT's hseqbase advances past the moved content, exactly
  /// as Clear() would.
  void MoveContentInto(Bat& dst);
  /// Steals `src`'s content (same type required). When this BAT is empty the
  /// buffers are swapped (`src` receives this BAT's old capacity); otherwise
  /// falls back to a bulk copying append. Either way `src` is left empty with
  /// its hseqbase advanced (like Clear()); this BAT's hseqbase is preserved.
  void TakeContentFrom(Bat& src);
  /// Keeps only the first `n` values (n <= size); hseqbase and buffer
  /// capacity are unchanged. Used to roll back a partially-parsed row.
  void Truncate(size_t n);

  /// Drops the first `n` values; hseqbase advances by `n`. This is how a
  /// basket consumes a processed prefix. O(size) — baskets are small by
  /// construction (they hold only unprocessed stream portions).
  void RemovePrefix(size_t n);
  /// Drops the values at the (sorted, unique) positions — the side effect of
  /// a basket expression that consumed a subset of the tuples. Remaining
  /// values are compacted; hseqbase is unchanged (oids of survivors shift,
  /// matching MonetDB's dense-head compaction on delete).
  void RemovePositions(const std::vector<size_t>& sorted_positions);
  /// Drops everything; hseqbase advances past the old content.
  void Clear();

  /// Bytes of payload currently held (approximate for strings).
  size_t MemoryUsage() const;

  /// Debug rendering "[v0, v1, ...]" capped at 32 values.
  std::string ToString() const;

 private:
  // The pool swaps recycled buffer capacity directly into/out of the typed
  // vectors; a member API for that would leak vector internals anyway.
  friend class BatchPool;

  template <typename Vec>
  void RemovePrefixImpl(Vec& v, size_t n) {
    v.erase(v.begin(), v.begin() + static_cast<ptrdiff_t>(n));
  }

  DataType type_;
  Oid hseqbase_;
  // Exactly one of these is in use, chosen by type_. A variant would model
  // this more strictly but costs a visit on every hot-path access.
  std::vector<int64_t> int64_data_;
  std::vector<double> double_data_;
  std::vector<uint8_t> bool_data_;
  std::vector<std::string> string_data_;
  // Empty when no nulls were ever appended; else aligned with the data.
  std::vector<uint8_t> validity_;

  void EnsureValidity();
};

using BatPtr = std::shared_ptr<Bat>;

/// Convenience constructors used across tests and benchmarks.
BatPtr MakeInt64Bat(const std::vector<int64_t>& values, Oid hseqbase = 0);
BatPtr MakeDoubleBat(const std::vector<double>& values, Oid hseqbase = 0);
BatPtr MakeStringBat(const std::vector<std::string>& values, Oid hseqbase = 0);
BatPtr MakeBoolBat(const std::vector<bool>& values, Oid hseqbase = 0);

}  // namespace datacell

#endif  // DATACELL_STORAGE_BAT_H_
