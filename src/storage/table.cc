#include "storage/table.h"

#include "common/check.h"

namespace datacell {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (const Field& f : schema_.fields()) {
    columns_.push_back(std::make_shared<Bat>(f.type));
  }
}

size_t Table::num_rows() const {
  return columns_.empty() ? 0 : columns_[0]->size();
}

Oid Table::hseqbase() const {
  return columns_.empty() ? 0 : columns_[0]->hseqbase();
}

Result<BatPtr> Table::ColumnByName(std::string_view column_name) const {
  auto idx = schema_.IndexOf(column_name);
  if (!idx.has_value()) {
    return Status::NotFound("no column '" + std::string(column_name) +
                            "' in table '" + name_ + "'");
  }
  return columns_[*idx];
}

Status Table::AppendRow(const Row& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(row.size()) + " does not match table '" +
        name_ + "' arity " + std::to_string(columns_.size()));
  }
  // Validate all values before mutating any column so a bad tuple cannot
  // leave the columns misaligned.
  for (size_t i = 0; i < row.size(); ++i) {
    Status st = CheckValueType(row[i], columns_[i]->type());
    if (!st.ok()) {
      return Status::TypeError("column '" + schema_.field(i).name +
                               "': " + st.message());
    }
  }
  // Types were validated above; the unchecked append skips a second round of
  // per-value Status construction on the ingest path.
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i]->AppendValueUnchecked(row[i]);
  }
  return Status::OK();
}

Status Table::AppendTable(const Table& other) {
  if (other.num_columns() != num_columns()) {
    return Status::InvalidArgument("appending table with different arity");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i]->type() != other.columns_[i]->type()) {
      return Status::TypeError("column type mismatch in AppendTable");
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i]->AppendBat(*other.columns_[i]);
  }
  return Status::OK();
}

Row Table::GetRow(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const auto& col : columns_) row.push_back(col->GetValue(i));
  return row;
}

std::vector<Row> Table::ToRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows());
  for (size_t i = 0; i < num_rows(); ++i) rows.push_back(GetRow(i));
  return rows;
}

std::shared_ptr<Table> Table::SharePrefix(std::string name,
                                          size_t num_columns) const {
  DC_CHECK_LE(num_columns, columns_.size());
  Schema prefix;
  for (size_t i = 0; i < num_columns; ++i) prefix.AddField(schema_.field(i));
  auto out = std::make_shared<Table>(std::move(name), std::move(prefix));
  for (size_t i = 0; i < num_columns; ++i) out->columns_[i] = columns_[i];
  return out;
}

std::unique_ptr<Table> Table::Slice(size_t offset, size_t length) const {
  auto out = std::make_unique<Table>(name_, schema_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    out->columns_[i] = BatPtr(columns_[i]->Slice(offset, length));
  }
  return out;
}

std::unique_ptr<Table> Table::Take(const std::vector<size_t>& positions) const {
  auto out = std::make_unique<Table>(name_, schema_);
  for (size_t i = 0; i < columns_.size(); ++i) {
    out->columns_[i] = BatPtr(columns_[i]->Take(positions));
  }
  return out;
}

std::unique_ptr<Table> Table::Clone() const { return Slice(0, num_rows()); }

void Table::MoveContentInto(Table& dst) {
  DC_CHECK_EQ(dst.num_columns(), num_columns());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i]->MoveContentInto(*dst.columns_[i]);
  }
}

void Table::RemovePrefix(size_t n) {
  for (auto& col : columns_) col->RemovePrefix(n);
}

void Table::RemovePositions(const std::vector<size_t>& sorted_positions) {
  for (auto& col : columns_) col->RemovePositions(sorted_positions);
}

void Table::Clear() {
  for (auto& col : columns_) col->Clear();
}

size_t Table::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& col : columns_) bytes += col->MemoryUsage();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::string out = name_ + "(" + schema_.ToString() + ") " +
                    std::to_string(num_rows()) + " rows\n";
  size_t n = std::min(num_rows(), max_rows);
  for (size_t i = 0; i < n; ++i) {
    Row row = GetRow(i);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      out += row[c].ToString();
    }
    out += "\n";
  }
  if (num_rows() > n) out += "...\n";
  return out;
}

}  // namespace datacell
