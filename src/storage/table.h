#ifndef DATACELL_STORAGE_TABLE_H_
#define DATACELL_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/bat.h"
#include "storage/schema.h"

namespace datacell {

/// A relation represented the MonetDB way: one BAT per attribute, positions
/// aligned across all BATs (tuple-order alignment). Also the container for
/// intermediate results inside the algebra interpreter.
///
/// Not thread-safe; baskets (core) add the locking discipline on top.
class Table {
 public:
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const;
  bool empty() const { return num_rows() == 0; }
  /// Oid of row 0 (rows carry oids hseqbase+i, aligned across columns).
  Oid hseqbase() const;

  const BatPtr& column(size_t i) const { return columns_[i]; }
  Result<BatPtr> ColumnByName(std::string_view column_name) const;

  /// Appends a full tuple; arity and types are checked.
  Status AppendRow(const Row& row);
  /// Appends all rows of `other` (schemas must be type-compatible).
  Status AppendTable(const Table& other);

  /// Reads row `i` back as peripheral values.
  Row GetRow(size_t i) const;
  /// Materialises all rows (tests / emitters only).
  std::vector<Row> ToRows() const;

  /// Zero-copy column projection: a table named `name` sharing this table's
  /// first `num_columns` column BATs (a schema prefix — no row copying).
  /// Used by the sharded merge stage to strip the trailing ts column off
  /// drained partials before binding them under a plan scan. The result
  /// aliases this table's buffers: treat both as read-only while either is
  /// in use.
  std::shared_ptr<Table> SharePrefix(std::string name,
                                     size_t num_columns) const;

  /// New table with rows [offset, offset+length).
  std::unique_ptr<Table> Slice(size_t offset, size_t length) const;
  /// New table with the given row positions (re-numbered oids from 0).
  std::unique_ptr<Table> Take(const std::vector<size_t>& positions) const;
  std::unique_ptr<Table> Clone() const;

  /// Zero-copy drain primitive: moves every column's content into `dst`
  /// (same column types; `dst` must be empty) by swapping buffers — `dst`
  /// receives the rows without copying, this table is left as Clear() would
  /// leave it (empty, hseqbase advanced), and it inherits `dst`'s old buffer
  /// capacity. See Bat::MoveContentInto.
  void MoveContentInto(Table& dst);

  /// Basket-consumption primitives; keep all columns aligned.
  void RemovePrefix(size_t n);
  void RemovePositions(const std::vector<size_t>& sorted_positions);
  void Clear();

  size_t MemoryUsage() const;

  /// Header plus first rows, for debugging.
  std::string ToString(size_t max_rows = 16) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<BatPtr> columns_;
};

using TablePtr = std::shared_ptr<Table>;

}  // namespace datacell

#endif  // DATACELL_STORAGE_TABLE_H_
