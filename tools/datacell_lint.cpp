// datacell-lint: offline static analysis of DataCell SQL scripts.
//
// Usage:  datacell-lint [--strict] [--json] [--partition-report <out.json>]
//                       [--state-report <out.json>] [--shards N]
//                       file.sql [more.sql ...]
//
// Each file is a ';'-separated script in the shell's dialect: DDL, INSERT,
// one-time SELECTs and continuous queries (either `\watch <name> <sql>;` or
// a bare SELECT over a basket expression). DDL and INSERTs execute against a
// scratch engine so later statements see the schemas; SELECTs are compiled
// and type-checked but never run. After every file is processed the whole
// registered net is linted (orphan baskets, dead transitions, chained
// predicate overlap, partition safety, ...).
//
// Diagnostics print to stderr as `file:line:col: severity: message [CODE]`
// (the format .github/datacell-lint-matcher.json turns into PR annotations).
// --json additionally prints the same findings to stdout as one JSON array
// of {code, severity, file, line, col, message} objects.
// --partition-report writes the pass-3 shard plan for every continuous
// query in the inputs — the machine-readable artifact the sharding work
// consumes and CI golden-diffs.
// --state-report writes the pass-4 state bound for every continuous query
// in the inputs — the verdict, byte figure and per-operator breakdown CI
// golden-diffs (examples/sql/state_report.golden.json). Purely static, so
// the artifact is deterministic.
// --shards N (N > 1) additionally replays each script against a live
// N-shard ShardedEngine, records the resulting placement (or the
// rejection reason) per query as a "placement" field in the report, and
// unions every shard's own Analyze() findings into the diagnostics, each
// prefixed with its shard label. The default output is unchanged, so
// golden diffs stay stable.
//
// Exit status: 1 when any error-severity diagnostic was produced (with
// --strict, warnings fail too; notes never fail); 0 otherwise. CI runs this
// over examples/sql.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/partition_analyzer.h"
#include "analysis/plan_analyzer.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "core/shard.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace {

using namespace datacell;

struct LintCounts {
  size_t errors = 0;
  size_t warnings = 0;
  size_t notes = 0;
};

/// One finding, normalized to file coordinates for both output formats.
struct LintDiag {
  std::string code;  // "P004", "A001", ... ; empty for parse/exec errors
  std::string severity;
  std::string file;
  size_t line = 0;  // 1-based file line; 0 = file-level finding
  size_t col = 0;
  std::string message;
};

/// One registered continuous query's shard plan, for --partition-report.
struct PartitionEntry {
  std::string file;
  size_t line = 0;
  std::string query;
  std::string sql;
  std::string report_json;       // PartitionReport::ToJson()
  std::string effective_verdict; // with engine-level overrides applied
  std::string placement;         // --shards N only; "" otherwise
};

/// One registered continuous query's pass-4 bound, for --state-report.
struct StateEntry {
  std::string file;
  size_t line = 0;
  std::string query;
  std::string sql;
  std::string report_json;  // StateReport::ToJson()
};

struct LintOutput {
  LintCounts counts;
  std::vector<LintDiag> diags;
  std::vector<PartitionEntry> partitions;
  std::vector<StateEntry> states;
};

void JsonAppendString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Prints the unified problem-matcher line and records the finding.
void Emit(LintOutput* out, LintDiag d) {
  std::fprintf(stderr, "%s:%zu:%zu: %s: %s%s%s%s\n", d.file.c_str(), d.line,
               d.col, d.severity.c_str(), d.message.c_str(),
               d.code.empty() ? "" : " [", d.code.c_str(),
               d.code.empty() ? "" : "]");
  if (d.severity == "error") ++out->counts.errors;
  if (d.severity == "warning") ++out->counts.warnings;
  if (d.severity == "note") ++out->counts.notes;
  out->diags.push_back(std::move(d));
}

/// One raw statement of a script with the 1-based file line it starts on.
struct ScriptStmt {
  std::string text;
  size_t line = 1;
};

/// Splits on ';' outside of '...' string literals and -- comments, keeping
/// the starting line of each statement for file:line diagnostics.
std::vector<ScriptStmt> SplitStatements(const std::string& content) {
  std::vector<ScriptStmt> out;
  std::string cur;
  size_t line = 1;
  size_t stmt_line = 1;
  bool in_string = false;
  bool in_comment = false;
  bool cur_started = false;
  auto flush = [&]() {
    std::string trimmed(Trim(cur));
    if (!trimmed.empty()) out.push_back({std::move(trimmed), stmt_line});
    cur.clear();
    cur_started = false;
  };
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      in_comment = false;
      cur.push_back(c);
      continue;
    }
    if (in_comment) continue;
    if (!in_string && c == '-' && i + 1 < content.size() &&
        content[i + 1] == '-') {
      in_comment = true;
      ++i;
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      flush();
      continue;
    }
    if (!cur_started && !std::isspace(static_cast<unsigned char>(c))) {
      cur_started = true;
      stmt_line = line;
    }
    cur.push_back(c);
  }
  flush();
  return out;
}

/// Live N-shard replay for --shards: DDL/INSERTs and query registrations
/// mirror into a real ShardedEngine, so the recorded placements come from
/// the actual router and placement passes — route conflicts included.
struct ShardSim {
  explicit ShardSim(size_t n) {
    ShardedEngineOptions opts;
    opts.num_shards = n;
    opts.engine.use_wall_clock = false;
    engine = std::make_unique<ShardedEngine>(opts);
  }

  void Submit(const std::string& name, const std::string& sql) {
    auto q = engine->SubmitContinuousQuery(name, sql);
    if (!q.ok()) {
      placements[name] = "rejected: " + q.status().message();
      return;
    }
    auto p = engine->GetPlacement(*q);
    if (p.ok()) placements[name] = (*p)->placement;
  }

  std::unique_ptr<ShardedEngine> engine;
  std::map<std::string, std::string> placements;  // query name -> placement
};

void ReportStatus(const char* file, size_t stmt_line, const Status& st,
                  LintOutput* out) {
  LintDiag d;
  d.severity = "error";
  d.file = file;
  d.line = stmt_line;
  d.message = st.message();
  Emit(out, std::move(d));
}

const char* SeverityName(analysis::Severity s) {
  switch (s) {
    case analysis::Severity::kError: return "error";
    case analysis::Severity::kWarning: return "warning";
    case analysis::Severity::kNote: return "note";
  }
  return "?";
}

/// Emits every finding of `report`. `stmt_line` anchors statement-relative
/// source positions to the file (0 = file-level report, e.g. the net pass).
/// `label` (e.g. "shard 1: ") prefixes each message in --shards mode.
void EmitReport(const char* file, size_t stmt_line,
                const analysis::AnalysisReport& report, LintOutput* out,
                const std::string& label = "") {
  for (const analysis::Diagnostic& d : report.diagnostics()) {
    LintDiag ld;
    ld.code = analysis::DiagCodeId(d.code);
    ld.severity = SeverityName(d.severity);
    ld.file = file;
    if (d.loc.line > 0 && stmt_line > 0) {
      // Positions are 1-based within the statement's text.
      ld.line = stmt_line + d.loc.line - 1;
      ld.col = d.loc.col;
    } else {
      ld.line = stmt_line;
    }
    ld.message =
        label + std::string(analysis::DiagCodeName(d.code)) + ": " + d.message;
    if (!d.object.empty()) ld.message += " [in " + d.object + "]";
    Emit(out, std::move(ld));
  }
}

bool LintFile(const char* path, Engine* engine, ShardSim* sim,
              size_t* watch_count,
              std::vector<std::pair<size_t, size_t>>* query_lines,
              LintOutput* out) {
  std::ifstream in(path);
  if (!in) {
    LintDiag d;
    d.severity = "error";
    d.file = path;
    d.message = "cannot open file";
    Emit(out, std::move(d));
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  for (const ScriptStmt& stmt : SplitStatements(content)) {
    // Shell meta-command: only \watch registers anything; the rest
    // (\stats, \quit, ...) are runtime-only and irrelevant to linting.
    if (stmt.text[0] == '\\') {
      if (!StartsWith(stmt.text, "\\watch ")) continue;
      std::istringstream is(stmt.text.substr(7));
      std::string name;
      is >> name;
      std::string sql;
      std::getline(is, sql);
      std::string trimmed_sql(Trim(sql));
      auto q = engine->SubmitContinuousQuery(name, trimmed_sql);
      if (!q.ok()) {
        ReportStatus(path, stmt.line, q.status(), out);
      } else {
        query_lines->push_back({*q, stmt.line});
        if (sim != nullptr) sim->Submit(name, trimmed_sql);
      }
      continue;
    }

    auto parsed = sql::ParseStatement(stmt.text);
    if (!parsed.ok()) {
      ReportStatus(path, stmt.line, parsed.status(), out);
      continue;
    }
    if (parsed->kind != sql::Statement::Kind::kSelect) {
      // DDL / INSERT: execute so later statements bind against the schema.
      auto r = engine->ExecuteSql(stmt.text);
      if (!r.ok()) ReportStatus(path, stmt.line, r.status(), out);
      // The shard replay needs the same catalog (errors already reported).
      if (r.ok() && sim != nullptr) sim->engine->ExecuteSql(stmt.text);
      continue;
    }
    sql::Planner planner(&engine->catalog());
    auto compiled = planner.CompileSelect(*parsed->select);
    if (!compiled.ok()) {
      ReportStatus(path, stmt.line, compiled.status(), out);
      continue;
    }
    if (compiled->continuous) {
      // A bare continuous SELECT registers under a synthetic name so the
      // net analysis sees its plumbing.
      std::string name = "lint" + std::to_string((*watch_count)++);
      auto q = engine->SubmitContinuousQuery(name, stmt.text);
      if (!q.ok()) {
        ReportStatus(path, stmt.line, q.status(), out);
      } else {
        query_lines->push_back({*q, stmt.line});
        if (sim != nullptr) sim->Submit(name, stmt.text);
      }
      continue;
    }
    // One-time SELECT: analyze only, never execute.
    analysis::AnalysisReport report = analysis::AnalyzePlan(*compiled->plan);
    EmitReport(path, stmt.line, report, out);
  }
  return true;
}

/// Collects the pass-3 shard plans of every query registered while linting
/// `path` into the --partition-report artifact.
void CollectPartitions(const char* path, Engine* engine, const ShardSim* sim,
                       const std::vector<std::pair<size_t, size_t>>& lines,
                       LintOutput* out) {
  for (const auto& [id, line] : lines) {
    auto q = engine->GetQuery(id);
    if (!q.ok() || (*q)->partition == nullptr) continue;
    PartitionEntry e;
    e.file = path;
    e.line = line;
    e.query = (*q)->name;
    e.sql = (*q)->sql;
    e.report_json = (*q)->partition->ToJson();
    e.effective_verdict =
        analysis::PartitionVerdictName(engine->EffectivePartitionVerdict(**q));
    if (sim != nullptr) {
      auto it = sim->placements.find(e.query);
      if (it != sim->placements.end()) e.placement = it->second;
    }
    out->partitions.push_back(std::move(e));
  }
}

/// Collects the pass-4 state bounds of every query registered while linting
/// `path` into the --state-report artifact.
void CollectStateBounds(const char* path, Engine* engine,
                        const std::vector<std::pair<size_t, size_t>>& lines,
                        LintOutput* out) {
  for (const auto& [id, line] : lines) {
    auto q = engine->GetQuery(id);
    if (!q.ok() || (*q)->state == nullptr) continue;
    StateEntry e;
    e.file = path;
    e.line = line;
    e.query = (*q)->name;
    e.sql = (*q)->sql;
    e.report_json = (*q)->state->ToJson();
    out->states.push_back(std::move(e));
  }
}

std::string DiagsJson(const std::vector<LintDiag>& diags) {
  std::string out = "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const LintDiag& d = diags[i];
    if (i > 0) out += ",";
    out += "\n  {\"code\":";
    JsonAppendString(out, d.code);
    out += ",\"severity\":";
    JsonAppendString(out, d.severity);
    out += ",\"file\":";
    JsonAppendString(out, d.file);
    out += ",\"line\":" + std::to_string(d.line);
    out += ",\"col\":" + std::to_string(d.col);
    out += ",\"message\":";
    JsonAppendString(out, d.message);
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::string StatesJson(const std::vector<StateEntry>& entries) {
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const StateEntry& e = entries[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\":";
    JsonAppendString(out, e.file);
    out += ",\"line\":" + std::to_string(e.line);
    out += ",\"query\":";
    JsonAppendString(out, e.query);
    out += ",\"sql\":";
    JsonAppendString(out, e.sql);
    out += ",\"state\":" + e.report_json;
    out += "}";
  }
  out += "\n]\n";
  return out;
}

std::string PartitionsJson(const std::vector<PartitionEntry>& entries) {
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const PartitionEntry& e = entries[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\":";
    JsonAppendString(out, e.file);
    out += ",\"line\":" + std::to_string(e.line);
    out += ",\"query\":";
    JsonAppendString(out, e.query);
    out += ",\"sql\":";
    JsonAppendString(out, e.sql);
    out += ",\"effective_verdict\":";
    JsonAppendString(out, e.effective_verdict);
    if (!e.placement.empty()) {
      out += ",\"placement\":";
      JsonAppendString(out, e.placement);
    }
    out += ",\"partition\":" + e.report_json;
    out += "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  bool json = false;
  size_t shards = 0;
  const char* partition_report = nullptr;
  const char* state_report = nullptr;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--partition-report") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--partition-report needs an output path\n");
        return 2;
      }
      partition_report = argv[++i];
    } else if (arg == "--state-report") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--state-report needs an output path\n");
        return 2;
      }
      state_report = argv[++i];
    } else if (arg == "--shards") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--shards needs a count\n");
        return 2;
      }
      long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "bad --shards value '%s'\n", argv[i]);
        return 2;
      }
      shards = static_cast<size_t>(parsed);
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: datacell-lint [--strict] [--json] "
          "[--partition-report <out.json>] [--state-report <out.json>] "
          "[--shards N] file.sql ...\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: datacell-lint [--strict] [--json] "
                 "[--partition-report <out.json>] [--state-report <out.json>] "
                 "[--shards N] file.sql ...\n");
    return 2;
  }

  LintOutput out;
  for (const char* path : files) {
    // A fresh engine per file: scripts are independent compilation units.
    EngineOptions opts;
    opts.use_wall_clock = false;
    Engine engine(opts);
    std::unique_ptr<ShardSim> sim;
    if (shards > 1) sim = std::make_unique<ShardSim>(shards);
    size_t watch_count = 0;
    std::vector<std::pair<size_t, size_t>> query_lines;  // QueryId -> line
    if (!LintFile(path, &engine, sim.get(), &watch_count, &query_lines, &out)) {
      continue;
    }
    analysis::AnalysisReport net = engine.Analyze();
    EmitReport(path, 0, net, &out);
    if (sim != nullptr) {
      // Shard nets can diverge (pinned queries live on one shard only), so
      // each shard's own analysis is unioned in under its label.
      for (size_t s = 0; s < sim->engine->num_shards(); ++s) {
        EmitReport(path, 0, sim->engine->shard(s).Analyze(), &out,
                   "shard " + std::to_string(s) + ": ");
      }
    }
    CollectPartitions(path, &engine, sim.get(), query_lines, &out);
    CollectStateBounds(path, &engine, query_lines, &out);
  }

  if (json) {
    std::fputs(DiagsJson(out.diags).c_str(), stdout);
  }
  if (partition_report != nullptr) {
    std::string rendered = PartitionsJson(out.partitions);
    if (std::string(partition_report) == "-") {
      std::fputs(rendered.c_str(), stdout);
    } else {
      std::ofstream f(partition_report);
      if (!f) {
        std::fprintf(stderr, "cannot write %s\n", partition_report);
        return 2;
      }
      f << rendered;
    }
  }
  if (state_report != nullptr) {
    std::string rendered = StatesJson(out.states);
    if (std::string(state_report) == "-") {
      std::fputs(rendered.c_str(), stdout);
    } else {
      std::ofstream f(state_report);
      if (!f) {
        std::fprintf(stderr, "cannot write %s\n", state_report);
        return 2;
      }
      f << rendered;
    }
  }

  std::fprintf(stderr, "datacell-lint: %zu error(s), %zu warning(s), %zu note(s)\n",
               out.counts.errors, out.counts.warnings, out.counts.notes);
  if (out.counts.errors > 0 || (strict && out.counts.warnings > 0)) return 1;
  return 0;
}
