// datacell-lint: offline static analysis of DataCell SQL scripts.
//
// Usage:  datacell-lint [--strict] file.sql [more.sql ...]
//
// Each file is a ';'-separated script in the shell's dialect: DDL, INSERT,
// one-time SELECTs and continuous queries (either `\watch <name> <sql>;` or
// a bare SELECT over a basket expression). DDL and INSERTs execute against a
// scratch engine so later statements see the schemas; SELECTs are compiled
// and type-checked but never run. After every file is processed the whole
// registered net is linted (orphan baskets, dead transitions, chained
// predicate overlap, ...).
//
// Exit status: 1 when any error-severity diagnostic was produced (with
// --strict, warnings fail too); 0 otherwise. CI runs this over examples/sql.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/plan_analyzer.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace {

using namespace datacell;

struct LintCounts {
  size_t errors = 0;
  size_t warnings = 0;
};

/// One raw statement of a script with the 1-based file line it starts on.
struct ScriptStmt {
  std::string text;
  size_t line = 1;
};

/// Splits on ';' outside of '...' string literals and -- comments, keeping
/// the starting line of each statement for file:line diagnostics.
std::vector<ScriptStmt> SplitStatements(const std::string& content) {
  std::vector<ScriptStmt> out;
  std::string cur;
  size_t line = 1;
  size_t stmt_line = 1;
  bool in_string = false;
  bool in_comment = false;
  bool cur_started = false;
  auto flush = [&]() {
    std::string trimmed(Trim(cur));
    if (!trimmed.empty()) out.push_back({std::move(trimmed), stmt_line});
    cur.clear();
    cur_started = false;
  };
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\n') {
      ++line;
      in_comment = false;
      cur.push_back(c);
      continue;
    }
    if (in_comment) continue;
    if (!in_string && c == '-' && i + 1 < content.size() &&
        content[i + 1] == '-') {
      in_comment = true;
      ++i;
      continue;
    }
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      flush();
      continue;
    }
    if (!cur_started && !std::isspace(static_cast<unsigned char>(c))) {
      cur_started = true;
      stmt_line = line;
    }
    cur.push_back(c);
  }
  flush();
  return out;
}

void Report(const char* file, size_t stmt_line, const Status& st,
            LintCounts* counts) {
  // Parser/binder positions are relative to the statement; print the
  // statement's own file line so editors can jump close to the fault.
  std::fprintf(stderr, "%s:%zu: error: %s\n", file, stmt_line,
               st.message().c_str());
  ++counts->errors;
}

void PrintReport(const char* scope, const analysis::AnalysisReport& report,
                 LintCounts* counts) {
  for (const analysis::Diagnostic& d : report.diagnostics()) {
    std::fprintf(stderr, "%s: %s\n", scope, d.ToString().c_str());
  }
  counts->errors += report.num_errors();
  counts->warnings += report.num_warnings();
}

bool LintFile(const char* path, Engine* engine, size_t* watch_count,
              LintCounts* counts) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: error: cannot open file\n", path);
    ++counts->errors;
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string content = buf.str();

  for (const ScriptStmt& stmt : SplitStatements(content)) {
    // Shell meta-command: only \watch registers anything; the rest
    // (\stats, \quit, ...) are runtime-only and irrelevant to linting.
    if (stmt.text[0] == '\\') {
      if (!StartsWith(stmt.text, "\\watch ")) continue;
      std::istringstream is(stmt.text.substr(7));
      std::string name;
      is >> name;
      std::string sql;
      std::getline(is, sql);
      auto q = engine->SubmitContinuousQuery(name, std::string(Trim(sql)));
      if (!q.ok()) Report(path, stmt.line, q.status(), counts);
      continue;
    }

    auto parsed = sql::ParseStatement(stmt.text);
    if (!parsed.ok()) {
      Report(path, stmt.line, parsed.status(), counts);
      continue;
    }
    if (parsed->kind != sql::Statement::Kind::kSelect) {
      // DDL / INSERT: execute so later statements bind against the schema.
      auto r = engine->ExecuteSql(stmt.text);
      if (!r.ok()) Report(path, stmt.line, r.status(), counts);
      continue;
    }
    sql::Planner planner(&engine->catalog());
    auto compiled = planner.CompileSelect(*parsed->select);
    if (!compiled.ok()) {
      Report(path, stmt.line, compiled.status(), counts);
      continue;
    }
    if (compiled->continuous) {
      // A bare continuous SELECT registers under a synthetic name so the
      // net analysis sees its plumbing.
      auto q = engine->SubmitContinuousQuery(
          "lint" + std::to_string((*watch_count)++), stmt.text);
      if (!q.ok()) Report(path, stmt.line, q.status(), counts);
      continue;
    }
    // One-time SELECT: analyze only, never execute.
    analysis::AnalysisReport report = analysis::AnalyzePlan(*compiled->plan);
    if (!report.diagnostics().empty()) {
      std::string scope = std::string(path) + ":" + std::to_string(stmt.line);
      PrintReport(scope.c_str(), report, counts);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool strict = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: datacell-lint [--strict] file.sql ...\n");
      return 0;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: datacell-lint [--strict] file.sql ...\n");
    return 2;
  }

  LintCounts counts;
  for (const char* path : files) {
    // A fresh engine per file: scripts are independent compilation units.
    EngineOptions opts;
    opts.use_wall_clock = false;
    Engine engine(opts);
    size_t watch_count = 0;
    if (!LintFile(path, &engine, &watch_count, &counts)) continue;
    analysis::AnalysisReport net = engine.Analyze();
    if (!net.diagnostics().empty()) {
      PrintReport(path, net, &counts);
    }
  }

  std::fprintf(stderr, "datacell-lint: %zu error(s), %zu warning(s)\n",
               counts.errors, counts.warnings);
  if (counts.errors > 0 || (strict && counts.warnings > 0)) return 1;
  return 0;
}
