// Live threaded deployment: the full closed loop the paper's Figure 1
// sketches, running in real time — a replayer pushes textual tuples onto a
// wire at a fixed rate, a receptor validates and ingests them, two standing
// queries (a filter and a 1-second windowed aggregate) process them under
// the multi-threaded scheduler, and emitters deliver results while the main
// thread just watches.
//
// Build & run:  ./build/examples/live_monitor [seconds] [rows_per_sec]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "adapters/replayer.h"
#include "core/engine.h"

using namespace datacell;

int main(int argc, char** argv) {
  int seconds = argc > 1 ? std::atoi(argv[1]) : 3;
  double rate = argc > 2 ? std::atof(argv[2]) : 50000.0;

  Engine engine;  // wall clock: this demo runs in real time
  if (!engine.ExecuteSql("create basket events (device int, reading double)")
           .ok()) {
    return 1;
  }

  auto alerts = engine.SubmitContinuousQuery(
      "alerts",
      "select device, reading from [select * from events] as e "
      "where e.reading > 0.999");
  auto stats = engine.SubmitContinuousQuery(
      "persec",
      "select count(*) as events, avg(reading) as mean "
      "from [select * from events] as w "
      "window range 1 seconds slide 1 seconds");
  if (!alerts.ok() || !stats.ok()) {
    std::fprintf(stderr, "submit failed\n");
    return 1;
  }
  auto alert_sink = std::make_shared<CountingSink>();
  if (!engine.Subscribe(*alerts, alert_sink).ok()) return 1;
  if (!engine
           .Subscribe(*stats, std::make_shared<CallbackSink>(
                                  [](const Table& batch, Timestamp) {
                                    for (size_t i = 0; i < batch.num_rows();
                                         ++i) {
                                      Row r = batch.GetRow(i);
                                      std::printf(
                                          "  window: events=%s mean=%s\n",
                                          r[0].ToString().c_str(),
                                          r[1].ToString().c_str());
                                    }
                                  }))
           .ok()) {
    return 1;
  }

  Channel wire;
  if (!engine.AttachReceptor("events", &wire).ok()) return 1;

  std::vector<ColumnSpec> cols(2);
  cols[0].type = DataType::kInt64;
  cols[0].int_max = 99;
  cols[1].type = DataType::kDouble;
  Replayer::Options ropts;
  ropts.rows_per_second = rate;
  ropts.total_rows = static_cast<int64_t>(rate * seconds);
  Replayer replayer(&wire, std::make_unique<UniformRowGenerator>(cols, 1),
                    ropts);

  std::printf("streaming %.0f rows/s for %d s through the threaded engine...\n",
              rate, seconds);
  if (!engine.Start(/*num_threads=*/2).ok()) return 1;
  if (!replayer.Start().ok()) return 1;

  while (!replayer.finished()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Let the pipeline drain, then stop everything.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  replayer.Stop();
  engine.Stop();
  engine.Drain();

  std::printf("\nrows sent      : %lld\n",
              static_cast<long long>(replayer.rows_sent()));
  std::printf("rows ingested  : %lld\n",
              static_cast<long long>(engine.tuples_ingested()));
  std::printf("alerts raised  : %lld  (expected ~%.0f)\n",
              static_cast<long long>(alert_sink->rows()),
              0.001 * rate * seconds);
  std::printf("scheduler errors: %lld\n",
              static_cast<long long>(engine.scheduler().error_count()));
  return 0;
}
