// Interactive DataCell shell: a minimal SQL client for exploring the engine.
// Reads ';'-terminated statements from stdin and supports a few meta
// commands. Continuous queries are submitted with the \watch command and
// their results print as they arrive.
//
//   ./build/examples/datacell_shell
//   datacell> create basket s (x int, label string);
//   datacell> \watch big select x, label from [select * from s] as t
//             where t.x > 10;
//   datacell> insert into s values (50, 'hit');
//   datacell> \stats
//   datacell> \quit
//
// With `--shards N` (N > 1) the shell fronts a ShardedEngine instead: DDL
// fans out to every shard, stream inserts route per the partition recipes,
// \watch places queries per their verdict, and \shards / \analyze show the
// resulting routes and placements.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "adapters/csv.h"
#include "common/string_util.h"
#include "core/engine.h"
#include "core/shard.h"
#include "net/observability.h"

using namespace datacell;

namespace {

void PrintTable(const Table& t) {
  const Schema& schema = t.schema();
  // Header.
  std::string header;
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) header += " | ";
    header += schema.field(c).name;
  }
  std::printf("%s\n", header.c_str());
  std::printf("%s\n", std::string(header.size(), '-').c_str());
  for (size_t i = 0; i < t.num_rows(); ++i) {
    std::printf("%s\n", FormatCsvRow(t.GetRow(i)).c_str());
  }
  std::printf("(%zu rows)\n", t.num_rows());
}

class Shell {
 public:
  explicit Shell(size_t num_shards) {
    // The shell drives the scheduler itself after every statement, so the
    // deterministic mode gives immediate, ordered output.
    EngineOptions opts;
    opts.factor_common_subplans = true;
    // Keep a bounded event timeline so \trace has something to dump.
    opts.trace_capacity = 1 << 14;
    // Sample engine telemetry into the sys.* baskets once a second so
    // `select * from sys.baskets as b ...` works out of the box.
    opts.monitor_tick_us = 1'000'000;
    if (num_shards > 1) {
      ShardedEngineOptions sopts;
      sopts.num_shards = num_shards;
      sopts.engine = opts;
      sharded_ = std::make_unique<ShardedEngine>(sopts);
    } else {
      engine_ = std::make_unique<Engine>(opts);
    }
  }

  int Run() {
    if (sharded_ != nullptr) {
      std::printf(
          "DataCell shell — %zu shards; end statements with ';', \\help for "
          "help\n",
          sharded_->num_shards());
    } else {
      std::printf("DataCell shell — end statements with ';', \\help for help\n");
    }
    std::string buffer;
    std::string line;
    std::printf("datacell> ");
    std::fflush(stdout);
    while (std::getline(std::cin, line)) {
      std::string trimmed(Trim(line));
      if (!trimmed.empty() && trimmed[0] == '\\') {
        if (!HandleMeta(trimmed)) return 0;
        Prompt(buffer);
        continue;
      }
      buffer += line;
      buffer += '\n';
      size_t pos;
      while ((pos = buffer.find(';')) != std::string::npos) {
        std::string stmt = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        if (!Trim(stmt).empty()) Execute(stmt);
      }
      Prompt(buffer);
    }
    return 0;
  }

 private:
  void Prompt(const std::string& buffer) {
    std::printf(Trim(buffer).empty() ? "datacell> " : "......... ");
    std::fflush(stdout);
  }

  void Execute(const std::string& sql) {
    auto result = sharded_ != nullptr ? sharded_->ExecuteSql(sql)
                                      : engine_->ExecuteSql(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      return;
    }
    if ((*result)->num_columns() > 0) {
      PrintTable(**result);
    } else {
      std::printf("ok\n");
    }
    // Fire any continuous queries affected by inserts.
    if (sharded_ != nullptr) {
      sharded_->Drain();
    } else {
      engine_->Drain();
    }
  }

  bool HandleMeta(const std::string& cmd) {
    if (StartsWith(cmd, "\\quit") || StartsWith(cmd, "\\q")) {
      return false;
    }
    if (StartsWith(cmd, "\\help")) {
      std::printf(
          "  <sql>;                 run DDL / INSERT / one-time SELECT\n"
          "  \\watch <name> <sql>;   submit a continuous query; results "
          "print as they arrive\n"
          "  \\explain <sql>         show the MAL plan of a query\n"
          "  \\explain <id|name>     show a registered query's execution\n"
          "                         pipeline (specialized steps or\n"
          "                         interpreter fallback reason) and plan\n"
          "  \\analyze               static analysis of the registered net "
          "(dataflow lints;\n"
          "                         with --shards also the query placements)\n"
          "  \\shards                per-shard report: routes, placements, "
          "counters\n"
          "  \\stats                 engine statistics\n"
          "  \\metrics [prefix]      Prometheus text exposition (optionally "
          "only\n"
          "                         series whose name starts with prefix)\n"
          "  \\profile on|off        toggle the per-step pipeline profiler\n"
          "  \\profile <id|name>     per-step profile of a registered query\n"
          "  \\trace on|off          toggle event timeline recording\n"
          "  \\trace dump <file>     dump the event timeline as Chrome "
          "trace JSON\n"
          "  \\serve [port]          start the HTTP observability endpoint\n"
          "                         (/metrics /trace /queries /healthz)\n"
          "  \\tables                list catalog relations\n"
          "  \\dump                  catalog as CREATE statements\n"
          "  \\quit                  exit\n");
      return true;
    }
    if (StartsWith(cmd, "\\shards")) {
      if (sharded_ != nullptr) {
        std::printf("%s", sharded_->ShardsReport().c_str());
      } else {
        std::printf("not sharded (restart with --shards N)\n");
      }
      return true;
    }
    if (StartsWith(cmd, "\\analyze")) {
      if (sharded_ != nullptr) {
        // Shard nets can diverge — pinned queries live on one shard only and
        // state bounds differ with placement — so every shard reports, each
        // under its own label.
        for (size_t s = 0; s < sharded_->num_shards(); ++s) {
          std::printf("-- shard %zu --\n%s", s,
                      sharded_->shard(s).Analyze().ToString().c_str());
        }
        if (sharded_->num_queries() > 0) {
          std::printf("-- shard placement --\n");
        }
        for (size_t id = 0; id < sharded_->num_queries(); ++id) {
          auto p = sharded_->GetPlacement(id);
          if (!p.ok()) continue;
          std::printf("query '%s': %s\n  placement: %s\n",
                      (*p)->name.c_str(),
                      datacell::analysis::PartitionVerdictName((*p)->verdict),
                      (*p)->placement.c_str());
        }
        return true;
      }
      std::printf("%s", engine_->Analyze().ToString().c_str());
      // Pass-3 partition verdicts, one block per live query: the static
      // report plus the engine-level effective verdict (live overrides).
      bool any = false;
      for (size_t id = 0; id < engine_->num_queries(); ++id) {
        auto q = engine_->GetQuery(id);
        if (!q.ok() || (*q)->removed || (*q)->partition == nullptr) continue;
        if (!any) {
          std::printf("-- partition safety (shard fan-out) --\n");
          any = true;
        }
        std::string reason;
        datacell::analysis::PartitionVerdict effective =
            engine_->EffectivePartitionVerdict(**q, &reason);
        std::printf("query '%s':\n%s", (*q)->name.c_str(),
                    (*q)->partition->Describe().c_str());
        if (effective != (*q)->partition->verdict) {
          std::printf("  effective: %s (%s)\n",
                      datacell::analysis::PartitionVerdictName(effective),
                      reason.c_str());
        }
      }
      // Pass-4 state bounds, one block per live query: the static bound and
      // the factory's measured occupancy it covers.
      any = false;
      for (size_t id = 0; id < engine_->num_queries(); ++id) {
        auto q = engine_->GetQuery(id);
        if (!q.ok() || (*q)->removed || (*q)->state == nullptr) continue;
        if (!any) {
          std::printf("-- state bounds (pass 4) --\n");
          any = true;
        }
        std::printf("query '%s':\n%s", (*q)->name.c_str(),
                    (*q)->state->Describe().c_str());
        if ((*q)->factory != nullptr) {
          std::printf("  measured: %zu B (high water %zu B)\n",
                      (*q)->factory->state_bytes(),
                      (*q)->factory->state_bytes_high_water());
        }
      }
      return true;
    }
    if (StartsWith(cmd, "\\stats")) {
      if (sharded_ != nullptr) {
        std::printf("%s", sharded_->ShardsReport().c_str());
      } else {
        std::printf("%s", engine_->StatsReport().c_str());
      }
      return true;
    }
    if (StartsWith(cmd, "\\metrics")) {
      std::string prefix(Trim(cmd.substr(8)));
      if (sharded_ != nullptr) {
        // Frontend registry (router + merge counters), then each shard's.
        std::printf("%s", sharded_->metrics().PrometheusText(prefix).c_str());
        for (size_t i = 0; i < sharded_->num_shards(); ++i) {
          std::printf("# shard %zu\n%s", i,
                      sharded_->shard(i).MetricsText(prefix).c_str());
        }
      } else {
        std::printf("%s", engine_->MetricsText(prefix).c_str());
      }
      return true;
    }
    if (StartsWith(cmd, "\\profile")) {
      if (sharded_ != nullptr) {
        std::printf("\\profile is per-engine; not available with --shards\n");
        return true;
      }
      std::string arg(Trim(cmd.substr(8)));
      while (!arg.empty() && (arg.back() == ';' || arg.back() == ' ')) {
        arg.pop_back();
      }
      if (arg == "on" || arg == "off") {
        engine_->SetProfiling(arg == "on");
        std::printf("profiling %s\n", arg.c_str());
        return true;
      }
      if (arg.empty()) {
        std::printf("usage: \\profile on|off  or  \\profile <id|name>\n");
        return true;
      }
      for (size_t id = 0; id < engine_->num_queries(); ++id) {
        auto q = engine_->GetQuery(static_cast<datacell::QueryId>(id));
        if (!q.ok() || (*q)->removed) continue;
        if ((*q)->name != arg && std::to_string(id) != arg) continue;
        std::printf("query %zu (%s): %s\n", id, (*q)->name.c_str(),
                    (*q)->sql.c_str());
        auto report = engine_->ProfileReport(static_cast<datacell::QueryId>(id));
        if (report.ok()) {
          std::printf("%s", report->c_str());
        } else {
          std::printf("error: %s\n", report.status().ToString().c_str());
        }
        if (!engine_->profiling()) {
          std::printf("(profiling is off; \\profile on to collect per-step "
                      "counters)\n");
        }
        return true;
      }
      std::printf("no registered query '%s'\n", arg.c_str());
      return true;
    }
    if (StartsWith(cmd, "\\trace")) {
      if (sharded_ != nullptr) {
        std::printf("\\trace is per-engine; not available with --shards\n");
        return true;
      }
      std::string arg(Trim(cmd.substr(6)));
      if (engine_->trace() == nullptr) {
        std::printf("tracing is disabled (rebuild with -DDATACELL_TRACE=ON to enable)\n");
        return true;
      }
      if (arg == "on" || arg == "off") {
        engine_->SetTraceEnabled(arg == "on");
        std::printf("tracing %s\n", arg.c_str());
        return true;
      }
      std::string path = arg;
      if (StartsWith(arg, "dump")) path = std::string(Trim(arg.substr(4)));
      if (path.empty()) {
        std::printf("usage: \\trace on|off  or  \\trace dump <file>  (open "
                    "in chrome://tracing or ui.perfetto.dev)\n");
        return true;
      }
      std::ofstream out(path, std::ios::trunc);
      if (!out) {
        std::printf("error: cannot open '%s'\n", path.c_str());
        return true;
      }
      out << engine_->TraceJson();
      std::printf("wrote %zu trace events to %s\n", engine_->trace()->size(),
                  path.c_str());
      return true;
    }
    if (StartsWith(cmd, "\\serve")) {
      if (sharded_ != nullptr) {
        std::printf("\\serve is per-engine; not available with --shards\n");
        return true;
      }
      std::string arg(Trim(cmd.substr(6)));
      if (arg == "stop") {
        if (observe_ != nullptr) {
          observe_->Stop();
          observe_.reset();
          std::printf("observability server stopped\n");
        } else {
          std::printf("observability server is not running\n");
        }
        return true;
      }
      if (observe_ != nullptr && observe_->running()) {
        std::printf("already serving on http://127.0.0.1:%u/\n",
                    observe_->port());
        return true;
      }
      uint16_t port = 0;
      if (!arg.empty()) {
        long parsed = std::strtol(arg.c_str(), nullptr, 10);
        if (parsed < 0 || parsed > 65535) {
          std::printf("error: bad port '%s'\n", arg.c_str());
          return true;
        }
        port = static_cast<uint16_t>(parsed);
      }
      observe_ = std::make_unique<ObservabilityServer>(engine_.get());
      if (auto st = observe_->Start(port); !st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        observe_.reset();
        return true;
      }
      std::printf("serving http://127.0.0.1:%u/  (/metrics /trace /queries "
                  "/healthz; \\serve stop to stop)\n",
                  observe_->port());
      return true;
    }
    if (StartsWith(cmd, "\\dump")) {
      // Shard catalogs stay identical under DDL fan-out, so shard 0 stands
      // for all in sharded mode.
      Engine& cat = sharded_ != nullptr ? sharded_->shard(0) : *engine_;
      std::printf("%s", cat.DumpCatalogSql().c_str());
      return true;
    }
    if (StartsWith(cmd, "\\tables")) {
      Engine& cat = sharded_ != nullptr ? sharded_->shard(0) : *engine_;
      for (const std::string& name : cat.catalog().Names()) {
        auto kind = cat.catalog().KindOf(name);
        auto table = cat.catalog().Get(name);
        std::printf("  %-24s %s(%s)\n", name.c_str(),
                    kind.ok() && *kind == RelationKind::kBasket ? "basket "
                                                                : "table  ",
                    table.ok() ? (*table)->schema().ToString().c_str() : "?");
      }
      return true;
    }
    if (StartsWith(cmd, "\\explain ")) {
      std::string arg = cmd.substr(9);
      while (!arg.empty() && (arg.back() == ';' || arg.back() == ' ')) {
        arg.pop_back();
      }
      // A registered query id or name explains the *chosen* execution
      // pipeline (specialized step list, or interpreter + fallback reason);
      // anything else is compiled ad hoc and shown as its MAL plan.
      if (sharded_ != nullptr) {
        for (size_t id = 0; id < sharded_->num_queries(); ++id) {
          auto p = sharded_->GetPlacement(id);
          if (!p.ok()) continue;
          if ((*p)->name != arg && std::to_string(id) != arg) continue;
          std::printf("query %zu (%s): %s\n", id, (*p)->name.c_str(),
                      (*p)->placement.c_str());
          if ((*p)->report != nullptr) {
            std::printf("%s", (*p)->report->Describe().c_str());
          }
          return true;
        }
        auto mal = sharded_->shard(0).ExplainSql(arg);
        if (mal.ok()) {
          std::printf("%s", mal->c_str());
        } else {
          std::printf("error: %s\n", mal.status().ToString().c_str());
        }
        return true;
      }
      for (size_t id = 0; id < engine_->num_queries(); ++id) {
        auto q = engine_->GetQuery(static_cast<datacell::QueryId>(id));
        if (!q.ok() || (*q)->removed) continue;
        if ((*q)->name != arg && std::to_string(id) != arg) continue;
        std::printf("query %zu (%s): %s\n", id, (*q)->name.c_str(),
                    (*q)->sql.c_str());
        std::printf("%s", (*q)->factory->PipelineDescription().c_str());
        std::printf("\n%s", (*q)->factory->ExplainPlan().c_str());
        return true;
      }
      auto mal = engine_->ExplainSql(arg);
      if (mal.ok()) {
        std::printf("%s", mal->c_str());
      } else {
        std::printf("error: %s\n", mal.status().ToString().c_str());
      }
      return true;
    }
    if (StartsWith(cmd, "\\watch ")) {
      std::istringstream in(cmd.substr(7));
      std::string name;
      in >> name;
      std::string sql;
      std::getline(in, sql);
      // Strip a trailing ';'.
      while (!sql.empty() && (sql.back() == ';' || sql.back() == ' ')) {
        sql.pop_back();
      }
      auto q = sharded_ != nullptr
                   ? sharded_->SubmitContinuousQuery(name, sql)
                   : engine_->SubmitContinuousQuery(name, sql);
      if (!q.ok()) {
        std::printf("error: %s\n", q.status().ToString().c_str());
        return true;
      }
      auto printer = std::make_shared<CallbackSink>(
          [name](const Table& batch, Timestamp) {
            for (size_t i = 0; i < batch.num_rows(); ++i) {
              std::printf("[%s] %s\n", name.c_str(),
                          FormatCsvRow(batch.GetRow(i)).c_str());
            }
          });
      auto st = sharded_ != nullptr ? sharded_->Subscribe(*q, printer)
                                    : engine_->Subscribe(*q, printer);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        return true;
      }
      if (sharded_ != nullptr) {
        auto p = sharded_->GetPlacement(*q);
        std::printf("continuous query '%s' registered (%s)\n", name.c_str(),
                    p.ok() ? (*p)->placement.c_str() : "?");
      } else {
        std::printf("continuous query '%s' registered\n", name.c_str());
      }
      return true;
    }
    std::printf("unknown command %s (try \\help)\n", cmd.c_str());
    return true;
  }

  std::unique_ptr<Engine> engine_;          // --shards 1 (default)
  std::unique_ptr<ShardedEngine> sharded_;  // --shards N, N > 1
  std::unique_ptr<ObservabilityServer> observe_;
};

}  // namespace

int main(int argc, char** argv) {
  size_t num_shards = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--shards" && i + 1 < argc) {
      long parsed = std::strtol(argv[++i], nullptr, 10);
      if (parsed < 1) {
        std::fprintf(stderr, "bad --shards value '%s'\n", argv[i]);
        return 1;
      }
      num_shards = static_cast<size_t>(parsed);
    } else {
      std::fprintf(stderr, "usage: %s [--shards N]\n", argv[0]);
      return 1;
    }
  }
  Shell shell(num_shards);
  return shell.Run();
}
