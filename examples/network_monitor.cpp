// Network monitoring: one of the stream applications motivating the paper's
// introduction. Several standing queries share one packet-header stream
// (shared baskets, §2.5), including a cascaded query that consumes another
// query's output — the "network of queries inside the kernel" of §4.
//
//   packets ──┬─ suspicious : large packets to privileged ports
//             ├─ talkers    : per-source traffic volume, 1s tumbling window
//             └─ blocklist-hits : stream–table join against a blocklist
//   talkers_out ── heavy_hitters : talkers exceeding a volume threshold
//
// Build & run:  ./build/examples/network_monitor

#include <cstdio>

#include "adapters/csv.h"
#include "common/random.h"
#include "core/engine.h"

using namespace datacell;

namespace {

Status Run() {
  EngineOptions opts;
  opts.use_wall_clock = false;  // drive time manually: deterministic demo
  Engine engine(opts);

  DC_RETURN_NOT_OK(
      engine
          .ExecuteSql("create basket packets (src string, dst string, "
                      "port int, bytes int)")
          .status());
  // Reference table consulted by a continuous query (§2.6: predicates may
  // refer to objects elsewhere in the database).
  DC_RETURN_NOT_OK(
      engine.ExecuteSql("create table blocklist (addr string)").status());
  DC_RETURN_NOT_OK(engine
                       .ExecuteSql("insert into blocklist values "
                                   "('10.0.0.66'), ('10.0.0.99')")
                       .status());

  DC_ASSIGN_OR_RETURN(
      QueryId suspicious,
      engine.SubmitContinuousQuery(
          "suspicious",
          "select src, dst, port, bytes from [select * from packets] as p "
          "where p.port < 1024 and p.bytes > 1200"));

  DC_ASSIGN_OR_RETURN(
      QueryId talkers,
      engine.SubmitContinuousQuery(
          "talkers",
          "select src, sum(bytes) as volume, count(*) as pkts "
          "from [select * from packets] as p group by src "
          "window range 1 seconds slide 1 seconds"));

  DC_ASSIGN_OR_RETURN(
      QueryId blocked,
      engine.SubmitContinuousQuery(
          "blocked",
          "select p.src, p.dst, p.bytes from [select * from packets] as p "
          "join blocklist on p.dst = blocklist.addr"));

  // Cascaded query over the talkers' output basket.
  DC_ASSIGN_OR_RETURN(
      QueryId heavy,
      engine.SubmitContinuousQuery(
          "heavy_hitters",
          "select src, volume from [select * from talkers_out] as t "
          "where t.volume > 50000"));

  auto suspicious_sink = std::make_shared<CollectingSink>();
  auto heavy_sink = std::make_shared<CollectingSink>();
  auto blocked_sink = std::make_shared<CollectingSink>();
  auto talkers_sink = std::make_shared<CountingSink>();
  DC_RETURN_NOT_OK(engine.Subscribe(suspicious, suspicious_sink));
  DC_RETURN_NOT_OK(engine.Subscribe(talkers, talkers_sink));
  DC_RETURN_NOT_OK(engine.Subscribe(blocked, blocked_sink));
  DC_RETURN_NOT_OK(engine.Subscribe(heavy, heavy_sink));

  // Synthesise 3 seconds of traffic: a handful of hosts, one of them loud.
  Rng rng(2026);
  for (int second = 0; second < 3; ++second) {
    for (int i = 0; i < 400; ++i) {
      bool loud = rng.Bernoulli(0.3);
      std::string src = loud ? "10.0.0.7"
                             : "10.0.0." + std::to_string(rng.Uniform(1, 5));
      std::string dst = rng.Bernoulli(0.02)
                            ? "10.0.0.66"
                            : "10.0.1." + std::to_string(rng.Uniform(1, 250));
      int64_t port = rng.Bernoulli(0.1) ? rng.Uniform(20, 1023)
                                        : rng.Uniform(1024, 65535);
      int64_t bytes = loud ? rng.Uniform(800, 1500) : rng.Uniform(40, 1500);
      DC_RETURN_NOT_OK(engine.Ingest(
          "packets", {Value::String(src), Value::String(dst),
                      Value::Int64(port), Value::Int64(bytes)}));
    }
    engine.simulated_clock()->Advance(kMicrosPerSecond);
    engine.Drain();
  }
  engine.Drain();

  std::printf("suspicious packets (first 5 of %zu):\n",
              suspicious_sink->row_count());
  size_t shown = 0;
  for (const Row& row : suspicious_sink->SnapshotRows()) {
    if (shown++ == 5) break;
    std::printf("  %s\n", FormatCsvRow(row).c_str());
  }
  std::printf("talker windows emitted: %lld rows\n",
              static_cast<long long>(talkers_sink->rows()));
  std::printf("blocklist hits: %zu\n", blocked_sink->row_count());
  std::printf("heavy hitters:\n");
  for (const Row& row : heavy_sink->SnapshotRows()) {
    std::printf("  src=%s volume=%s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
