// Linear Road demo (paper §5): runs the simulated LR traffic through the
// full continuous-query network — segment statistics, accident detection and
// toll computation — and prints the resulting activity.
//
// Build & run:  ./build/examples/linearroad_demo [minutes] [xways]

#include <cstdio>
#include <cstdlib>

#include "linearroad/driver.h"
#include "linearroad/history.h"

using namespace datacell;
using namespace datacell::linearroad;

int main(int argc, char** argv) {
  int minutes = argc > 1 ? std::atoi(argv[1]) : 10;
  int xways = argc > 2 ? std::atoi(argv[2]) : 1;

  EngineOptions opts;
  opts.use_wall_clock = false;  // simulation time drives the LR windows
  Engine engine(opts);

  auto queries = InstallLrQueries(&engine);
  if (!queries.ok()) {
    std::fprintf(stderr, "install failed: %s\n",
                 queries.status().ToString().c_str());
    return 1;
  }

  // Historical accounting: assessed tolls land in a plain table that
  // one-time SQL queries afterwards (LR's type-2/3 historical queries).
  auto history = TollHistory::Install(&engine, queries->tolls);
  if (!history.ok()) {
    std::fprintf(stderr, "history failed: %s\n",
                 history.status().ToString().c_str());
    return 1;
  }

  // Watch tolls as they are assessed.
  auto toll_watch = std::make_shared<CallbackSink>(
      [](const Table& batch, Timestamp) {
        for (size_t i = 0; i < std::min<size_t>(batch.num_rows(), 3); ++i) {
          Row r = batch.GetRow(i);
          std::printf("  toll: xway=%s dir=%s seg=%s avg_speed=%s toll=%s\n",
                      r[0].ToString().c_str(), r[1].ToString().c_str(),
                      r[2].ToString().c_str(), r[3].ToString().c_str(),
                      r[4].ToString().c_str());
        }
      });
  if (!engine.Subscribe(queries->tolls, toll_watch).ok()) return 1;

  LrConfig cfg;
  cfg.num_xways = xways;
  cfg.vehicles_per_xway = 800;
  cfg.accident_prob = 0.002;
  LrDriver driver(&engine, cfg);

  std::printf("running %d simulated minutes of Linear Road (L=%d)...\n",
              minutes, xways);
  if (Status st = driver.Run(int64_t{60} * minutes); !st.ok()) {
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\n-- summary --\n");
  std::printf("position reports ingested : %lld\n",
              static_cast<long long>(driver.total_reports()));
  std::printf("accidents simulated       : %lld\n",
              static_cast<long long>(driver.accidents_started()));
  std::printf("segment statistics rows   : %lld\n",
              static_cast<long long>(queries->segstats_sink->rows()));
  std::printf("accident alerts           : %lld\n",
              static_cast<long long>(queries->accidents_sink->rows()));
  std::printf("tolls assessed            : %lld\n",
              static_cast<long long>(queries->tolls_sink->rows()));
  std::printf("per-second processing time: %s\n",
              driver.tick_time_us().Summary().c_str());

  // Historical queries over the assessed tolls.
  for (int x = 0; x < xways; ++x) {
    auto balance = (*history)->ExpresswayBalance(&engine, x);
    if (balance.ok()) {
      std::printf("tolls collected on xway %d : %lld\n", x,
                  static_cast<long long>(*balance));
    }
  }
  return 0;
}
