// Headless observability demo: runs a small monitored + profiled workload,
// freezes the engine (deterministic drain, no scheduler threads), then
// serves the HTTP observability endpoint for a fixed duration. Because the
// engine is quiescent while serving, every /metrics scrape is byte-identical
// to the snapshot written via --metrics-snapshot — which is exactly what the
// CI curl smoke diffs.
//
//   ./build/examples/observe_demo --port 18080 --duration-ms 15000
//       --metrics-snapshot /tmp/metrics.golden
//
// Flags:
//   --port N              listen port (default 0 = ephemeral; printed)
//   --duration-ms N       how long to serve before exiting (default 3000)
//   --metrics-snapshot F  write Engine::MetricsText() to F before serving

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "core/engine.h"
#include "net/observability.h"

using namespace datacell;

int main(int argc, char** argv) {
  long port = 0;
  long duration_ms = 3000;
  std::string snapshot_path;
  for (int i = 1; i < argc; ++i) {
    auto value = [&](const char* flag) -> const char* {
      if (std::strcmp(argv[i], flag) != 0 || i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (const char* v = value("--port")) {
      port = std::strtol(v, nullptr, 10);
    } else if (const char* v = value("--duration-ms")) {
      duration_ms = std::strtol(v, nullptr, 10);
    } else if (const char* v = value("--metrics-snapshot")) {
      snapshot_path = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  EngineOptions opts;
  opts.monitor_tick_us = 50'000;
  opts.profile_queries = true;
  Engine engine(opts);

  // A small representative workload: a specialized selection over a stream,
  // drained deterministically so the sys.* streams and the profiler have
  // real data by the time the endpoint comes up.
  if (!engine.ExecuteSql("create basket readings (x int, label string)")
           .ok()) {
    std::fprintf(stderr, "create basket failed\n");
    return 1;
  }
  auto q = engine.SubmitContinuousQuery(
      "demo",
      "select x, label from [select * from readings] as r where r.x > 100");
  if (!q.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", q.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < 1000; ++i) {
    if (!engine
             .Ingest("readings",
                     {Value::Int64(i), Value::String("r" + std::to_string(i))})
             .ok()) {
      std::fprintf(stderr, "ingest failed\n");
      return 1;
    }
    if (i % 100 == 0) engine.Drain();
  }
  engine.Drain();

  // No scheduler threads run from here on: the engine is quiescent, so
  // every scrape during the serve window sees this exact exposition.
  if (!snapshot_path.empty()) {
    std::ofstream out(snapshot_path, std::ios::trunc | std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", snapshot_path.c_str());
      return 1;
    }
    out << engine.MetricsText();
  }

  ObservabilityServer server(&engine);
  if (auto st = server.Start(static_cast<uint16_t>(port)); !st.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving http://127.0.0.1:%u/ for %ld ms\n", server.port(),
              duration_ms);
  std::fflush(stdout);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  server.Stop();
  std::printf("served %lld requests\n",
              static_cast<long long>(server.requests()));
  return 0;
}
