-- The README's first pipeline, in lintable script form:
--   datacell-lint examples/sql/quickstart.sql
create basket sensors (id int, temp double);

-- Continuous query: tuples hotter than 30 degrees flow to hot_out.
\watch hot select id, temp from [select * from sensors] as s where s.temp > 30.0;
