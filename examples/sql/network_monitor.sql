-- A small query network over one packet stream plus a static limits table
-- (stream-table join through a statically bound relation). Two queries share
-- the packets basket, so \analyze / datacell-lint reports the N004
-- multi-reader note (buffer stealing disabled) as a warning.
create basket packets (src int, dst int, bytes int) with (cardinality(src) = 1024);
create table limits (dst int, cap int);
insert into limits values (80, 1000), (443, 5000);

\watch big select src, dst, bytes from [select * from packets] as p where p.bytes > 1500;
\watch talkers select src, sum(bytes) as total, count(*) as n from [select * from packets] as p group by src;

-- Second hop: consume the first query's output stream.
\watch big_pairs select src, dst from [select * from big_out] as b where b.dst = 443;
