-- Seeded-bad fixture: every statement below must be rejected by
-- datacell-lint (nonzero exit). Each line exercises a distinct error class
-- that used to surface only at fire time.
create basket s (x int, name varchar);

-- arithmetic over a string operand
\watch bad_arith select x + name from [select * from s] as t;

-- string compared with a number
\watch bad_cmp select x from [select * from s] as t where t.name > 10;

-- LIKE over a non-string operand
\watch bad_like select x from [select * from s] as t where t.x like 'a%';

-- NOT over a non-boolean operand
\watch bad_not select x from [select * from s] as t where not t.x;

-- aggregating a string column
\watch bad_agg select count(name) from [select * from s] as t group by x;

-- unknown column
\watch bad_col select missing from [select * from s] as t;

-- non-boolean HAVING built over aggregates
\watch bad_having select x, count(*) from [select * from s] as t group by x having count(*) + 1;
