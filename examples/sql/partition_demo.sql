-- Partition-safety analyzer demo corpus.
--
--   datacell-lint --json --partition-report - examples/sql/partition_demo.sql
--
-- Every query below registers cleanly and receives a partition verdict from
-- analysis pass 3 (see docs/ARCHITECTURE.md). The corpus spans all four
-- verdicts: partitionable, needs-final-merge, needs-broadcast, pinned.
-- Each query reads its own basket so the live N004 multi-reader override
-- never fires and the effective verdict matches the static one.
-- (\watch statements are one-liners: the lint splitter is line-based.)

-- q1: per-tuple filter/project preserves the declared key end to end.
-- Verdict: partitionable(id); hot_out inherits the key.
create basket readings (id int, temp double) partition by id;
\watch hot select id, temp from [select * from readings] as r where r.temp > 30.0;

-- q2: group-by on the declared partition key. Shards aggregate disjoint key
-- ranges, so no merge is needed. Verdict: partitionable(sym).
create basket trades (sym string, price double, qty int) partition by sym with (cardinality(sym) = 64);
\watch per_sym select sym, sum(qty) as total from [select * from trades] as t group by sym;

-- q3: co-partitioned equi-join -- both streams declare the join column as
-- their key, so matching tuples land on the same shard.
-- Verdict: partitionable(sym on both inputs).
create basket bids (sym string, price double) partition by sym;
create basket asks (sym string, price double) partition by sym;
\watch spread select b.sym, b.price - a.price as gap from [select * from bids] as b join [select * from asks] as a on b.sym = a.sym;

-- q4: group-by on a plain non-key column. Still partitionable, but only
-- after a re-shuffle on the grouping column (advisory A001).
create basket fills (sym string, qty int) partition by sym with (cardinality(qty) = 32);
\watch by_qty select qty, count(*) as n from [select * from fills] as f group by qty;

-- q5: group-by on a column of the join build side while the join already
-- pins both inputs to the join key. No single split key satisfies both, so
-- shards emit partial aggregates and a final re-aggregation merges them.
-- Verdict: needs-final-merge (re-aggregate).
create basket orders (sym string, qty int) partition by sym;
create basket quotes (sym string, bid double) partition by sym;
\watch depth select q.bid, sum(o.qty) as vol from [select * from orders] as o join [select * from quotes] as q on o.sym = q.sym group by q.bid;

-- q6: scalar aggregate with avg. Shards keep sum+count partials; the merge
-- plan re-divides (advisory A008). Verdict: needs-final-merge.
create basket samples (id int, temp double) partition by id;
\watch avg_temp select avg(temp) as mean from [select * from samples] as s;

-- q7: stream-table join. The static relation must be replicated to every
-- shard (advisory A004). Verdict: needs-broadcast(instruments).
create table instruments (sym string, sector string);
insert into instruments values ('AAA', 'tech'), ('BBB', 'energy');
create basket ticks (sym string, price double) partition by sym;
\watch sectors select t.sym, i.sector from [select * from ticks] as t join instruments as i on t.sym = i.sym;

-- q8: ordered emission. Shards sort locally; emission needs a k-way ordered
-- merge plus the LIMIT re-applied (advisory A005).
-- Verdict: needs-final-merge (ordered-merge).
create basket scores (player string, pts double) partition by player;
\watch ranked select player, pts from [select * from scores] as s order by pts desc limit 10;

-- q9: DISTINCT over a computed expression -- no input column witnesses the
-- distinct key, so duplicates on different shards would both survive.
-- Verdict: pinned.
create basket events (id int, bytes int) partition by id;
\watch kinds select distinct bytes / 64 as bucket from [select * from events] as e;

-- q10: count-based window. Firing depends on global arrival order, which no
-- split preserves. Verdict: pinned.
create basket packets (src int, bytes int) partition by src;
\watch batches select sum(bytes) as burst from [select * from packets] as p window size 100;

-- q11: stream with no declared partition key. The analyzer prescribes the
-- grouping column as the key to declare (advisory A002).
create basket logs (host string, lat double) with (cardinality(host) = 50);
\watch p99ish select host, max(lat) as worst from [select * from logs] as l group by host;
