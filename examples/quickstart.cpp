// Quickstart: the paper's Figure 1 pipeline — a receptor feeds basket B1, a
// factory runs a continuous selection over it into basket B2, and an emitter
// delivers the qualifying tuples to the client.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "adapters/channel.h"
#include "adapters/csv.h"
#include "core/engine.h"

using namespace datacell;

int main() {
  Engine engine;

  // Declare the stream: a basket with an implicit timestamp column.
  auto create = engine.ExecuteSql(
      "create basket sensors (id int, room string, temp double)");
  if (!create.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 create.status().ToString().c_str());
    return 1;
  }

  // Register a continuous query. The bracketed basket expression consumes
  // tuples from the stream; the outer query filters them (paper §2.6, q1).
  auto query = engine.SubmitContinuousQuery(
      "hot_rooms",
      "select id, room, temp from [select * from sensors] as s "
      "where s.temp > 30.0");
  if (!query.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // Show the compiled plan in MonetDB's MAL style.
  auto info = engine.GetQuery(*query);
  std::printf("-- compiled continuous query plan --\n%s\n",
              (*info)->factory->ExplainPlan().c_str());

  // Subscribe a client to the query result.
  auto sink = std::make_shared<CollectingSink>();
  if (auto st = engine.Subscribe(*query, sink); !st.ok()) {
    std::fprintf(stderr, "subscribe failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // A receptor picks up textual tuples from a channel — the stream's edge.
  Channel wire;
  auto receptor = engine.AttachReceptor("sensors", &wire);
  if (!receptor.ok()) {
    std::fprintf(stderr, "receptor failed: %s\n",
                 receptor.status().ToString().c_str());
    return 1;
  }

  // Events arrive...
  wire.Push("1,kitchen,21.5");
  wire.Push("2,server-room,35.2");
  wire.Push("3,lab,29.9");
  wire.Push("4,server-room,41.0");
  wire.Push("5,office,33.3");

  // ...and the scheduler fires the ready transitions (receptor -> factory ->
  // emitter) until the dataflow is quiescent.
  engine.Drain();

  std::printf("-- hot rooms --\n");
  for (const Row& row : sink->TakeRows()) {
    std::printf("%s\n", FormatCsvRow(row).c_str());
  }

  // The basket is empty again: its tuples were consumed by the query.
  auto remaining = engine.ExecuteSql("select * from sensors");
  std::printf("tuples left in basket: %zu\n", (*remaining)->num_rows());
  return 0;
}
