// Financial services scenario (paper §1): sliding-window analytics over a
// trade-tick stream. Demonstrates the two window evaluation modes of §3.1 on
// the same query — incremental (basic-window) and full re-evaluation — and
// shows they produce identical answers while doing different amounts of
// work.
//
// Build & run:  ./build/examples/financial_ticks

#include <cstdio>

#include "common/random.h"
#include "core/engine.h"

using namespace datacell;

namespace {

constexpr const char* kVwapSql =
    // Moving per-symbol stats over the last 512 trades, refreshed every 128:
    // count, average price, min/max, and traded volume.
    "select symbol, count(*) as trades, avg(price) as avg_price, "
    "min(price) as low, max(price) as high, sum(qty) as volume "
    "from [select * from ticks] as w "
    "group by symbol order by symbol window size 512 slide 128";

Status Run() {
  EngineOptions opts;
  opts.use_wall_clock = false;
  Engine engine(opts);
  DC_RETURN_NOT_OK(
      engine
          .ExecuteSql(
              "create basket ticks (symbol string, price double, qty int)")
          .status());

  QueryOptions incremental;
  incremental.window_mode = WindowMode::kIncremental;
  QueryOptions reeval;
  reeval.window_mode = WindowMode::kReEvaluation;
  DC_ASSIGN_OR_RETURN(QueryId q_inc, engine.SubmitContinuousQuery(
                                         "stats_inc", kVwapSql, incremental));
  DC_ASSIGN_OR_RETURN(QueryId q_re, engine.SubmitContinuousQuery(
                                        "stats_re", kVwapSql, reeval));
  auto inc_sink = std::make_shared<CollectingSink>();
  auto re_sink = std::make_shared<CollectingSink>();
  DC_RETURN_NOT_OK(engine.Subscribe(q_inc, inc_sink));
  DC_RETURN_NOT_OK(engine.Subscribe(q_re, re_sink));

  // A random walk per symbol.
  const char* symbols[] = {"MDB", "CWI", "VLDB"};
  double px[] = {100.0, 50.0, 250.0};
  Rng rng(7);
  for (int i = 0; i < 4096; ++i) {
    int s = static_cast<int>(rng.Uniform(0, 2));
    px[s] = std::max(1.0, px[s] + rng.Gaussian(0, 0.5));
    DC_RETURN_NOT_OK(engine.Ingest(
        "ticks", {Value::String(symbols[s]), Value::Double(px[s]),
                  Value::Int64(rng.Uniform(1, 500))}));
    if (i % 64 == 0) engine.Drain();
  }
  engine.Drain();

  auto inc_rows = inc_sink->TakeRows();
  auto re_rows = re_sink->TakeRows();
  std::printf("windows emitted: incremental=%zu reeval=%zu\n",
              inc_rows.size(), re_rows.size());
  // The two modes must agree on every window result. Doubles are compared
  // with a relative tolerance: the basic-window model sums per sub-window
  // before combining, and floating-point addition is not associative, so
  // the last bits of avg/sum may differ. Ignore the trailing delivery-ts
  // column, which differs by delivery instant.
  auto close = [](const Value& a, const Value& b) {
    if (a.is_null() || b.is_null()) return a.is_null() == b.is_null();
    if (a.is_string() || b.is_string()) return a == b;
    double x = a.AsDouble();
    double y = b.AsDouble();
    return std::abs(x - y) <= 1e-9 * std::max({1.0, std::abs(x), std::abs(y)});
  };
  size_t n = std::min(inc_rows.size(), re_rows.size());
  size_t mismatches = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c + 1 < inc_rows[i].size(); ++c) {
      if (!close(inc_rows[i][c], re_rows[i][c])) {
        ++mismatches;
        break;
      }
    }
  }
  std::printf("mismatching windows: %zu\n", mismatches);

  std::printf("last window per symbol (incremental mode):\n");
  std::printf("  %-6s %8s %10s %10s %10s %10s\n", "sym", "trades", "avg",
              "low", "high", "volume");
  for (size_t i = inc_rows.size() >= 3 ? inc_rows.size() - 3 : 0;
       i < inc_rows.size(); ++i) {
    const Row& r = inc_rows[i];
    std::printf("  %-6s %8s %10s %10s %10s %10s\n", r[0].ToString().c_str(),
                r[1].ToString().c_str(), r[2].ToString().c_str(),
                r[3].ToString().c_str(), r[4].ToString().c_str(),
                r[5].ToString().c_str());
  }

  // Work comparison: tuples touched by each factory.
  auto inc_info = engine.GetQuery(q_inc);
  auto re_info = engine.GetQuery(q_re);
  std::printf("factory work: incremental mode='%s', reeval mode='%s'\n",
              (*inc_info)->factory->window_mode_name(),
              (*re_info)->factory->window_mode_name());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = Run();
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
